package integration_test

// End-to-end metrics coverage: a MinBFT cluster over real TCP with every
// layer publishing into one shared obs.Registry — transport, replicas, the
// sig-cache fast path, and the pipelined client — then cross-layer
// invariants checked on the final snapshot. This is the wiring the
// cmd/minbft-kv -debug-addr flag exposes, verified in-process.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"unidir/internal/kvstore"
	"unidir/internal/minbft"
	"unidir/internal/obs"
	"unidir/internal/sig"
	"unidir/internal/smr"
	"unidir/internal/tcpnet"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

func TestMetricsEndToEnd(t *testing.T) {
	const (
		n, f = 3, 1
		ops  = 30
	)
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	reg := obs.NewRegistry()

	// 4 TCP processes: 3 replicas + the pipelined client, replicas metered.
	cfg := make(tcpnet.Config, n+1)
	for i := 0; i <= n; i++ {
		cfg[types.ProcessID(i)] = "127.0.0.1:0"
	}
	nets := make([]*tcpnet.Net, n+1)
	for i := 0; i <= n; i++ {
		var netOpts []tcpnet.Option
		if i < n {
			netOpts = append(netOpts, tcpnet.WithMetrics(reg))
		}
		nt, err := tcpnet.New(types.ProcessID(i), cfg, netOpts...)
		if err != nil {
			t.Fatalf("tcpnet.New(%d): %v", i, err)
		}
		cfg[types.ProcessID(i)] = nt.Addr()
		nets[i] = nt
	}
	t.Cleanup(func() {
		for _, nt := range nets {
			_ = nt.Close()
		}
	})

	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(71)))
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	tu.Verifier.FastPath().AttachMetrics(reg)
	replicas := make([]*minbft.Replica, n)
	for i := 0; i < n; i++ {
		replicas[i], err = minbft.New(m, nets[i], tu.Devices[i], tu.Verifier, kvstore.New(),
			minbft.WithRequestTimeout(5*time.Second), minbft.WithMetrics(reg))
		if err != nil {
			t.Fatalf("minbft.New: %v", err)
		}
		defer replicas[i].Close()
	}
	pl, err := smr.NewPipeline(nets[n], m.All(), m.FPlusOne(), uint64(n), time.Second, 8,
		smr.WithPipelineRequestEncoder(minbft.EncodeRequestEnvelope), smr.WithPipelineMetrics(reg))
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	defer pl.Close()
	kv := kvstore.NewPipeClient(pl)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	calls := make([]*smr.Call, 0, ops)
	for i := 0; i < ops; i++ {
		call, err := kv.PutAsync(ctx, fmt.Sprintf("k%d", i), []byte{byte(i)})
		if err != nil {
			t.Fatalf("PutAsync %d: %v", i, err)
		}
		calls = append(calls, call)
	}
	for i, call := range calls {
		if _, err := call.Result(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}

	// Let the metrics settle: the f+1th reply completes the client before
	// the slowest replica finishes executing, so poll until every layer's
	// accounting closes.
	deadline := time.Now().Add(15 * time.Second)
	var snap obs.Snapshot
	for {
		snap = reg.Snapshot()
		settled := snap.Counter("sig_lookups_total") ==
			snap.Counter("sig_cache_hits_total")+
				snap.Counter("sig_cache_neg_hits_total")+snap.Counter("sig_verifications_total")
		done := true
		for i := 0; i < n; i++ {
			exec := snap.Counter(obs.Name("minbft_requests_executed_total", "replica", types.ProcessID(i)))
			if exec < ops {
				done = false
			}
		}
		if settled && done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics did not settle: %+v", snap.Counters)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Consensus accounting, per replica. The cluster stayed in view 0, so
	// replica 0 is the only proposer and nobody can execute more batches
	// than it proposed.
	proposed := snap.Counter(obs.Name("minbft_batches_proposed_total", "replica", types.ProcessID(0)))
	if proposed == 0 {
		t.Fatal("primary proposed no batches")
	}
	for i := 0; i < n; i++ {
		executed := snap.Counter(obs.Name("minbft_batches_executed_total", "replica", types.ProcessID(i)))
		if executed == 0 {
			t.Fatalf("replica %d executed no batches", i)
		}
		if executed > proposed {
			t.Fatalf("replica %d executed %d batches > %d proposed", i, executed, proposed)
		}
		// Every executed batch was bound (timestamped) at accept, so the
		// commit-latency histogram must account for each one exactly once.
		hist, ok := snap.Histograms[obs.Name("minbft_commit_latency_seconds", "replica", types.ProcessID(i))]
		if !ok {
			t.Fatalf("replica %d has no commit-latency histogram", i)
		}
		if hist.Count != executed {
			t.Fatalf("replica %d: commit-latency count %d != executed batches %d", i, hist.Count, executed)
		}
	}
	if got := snap.HistogramCount("minbft_batch_size"); got == 0 {
		t.Fatal("batch-size histogram empty")
	}

	// Sig cache: real traffic, and with 3 replicas re-verifying the same
	// UI attestations the cache must have produced hits.
	if snap.Counter("sig_lookups_total") == 0 {
		t.Fatal("sig cache served no lookups")
	}
	if snap.Counter("sig_cache_hits_total") == 0 {
		t.Fatal("sig cache had no hits")
	}

	// Transport: replicas exchanged frames, and the totals balance in
	// aggregate (every metered tx lands on a metered rx except frames to
	// the unmetered client, so tx >= rx > 0 among replicas is too strong;
	// nonzero both ways is the robust check).
	if snap.CounterSum("tcpnet_tx_frames_total") == 0 {
		t.Fatal("no TCP frames sent")
	}
	if snap.CounterSum("tcpnet_rx_frames_total") == 0 {
		t.Fatal("no TCP frames received")
	}

	// Client pipeline: everything submitted completed, window drained.
	if got := snap.Counter(obs.Name("smr_requests_submitted_total", "client", n)); got != ops {
		t.Fatalf("pipeline submitted %d != %d", got, ops)
	}
	if got := snap.Counter(obs.Name("smr_requests_completed_total", "client", n)); got != ops {
		t.Fatalf("pipeline completed %d != %d", got, ops)
	}
	if got := snap.GaugeSum("smr_pipeline_depth"); got != 0 {
		t.Fatalf("pipeline depth %d after drain", got)
	}

	// The Prometheus export of the same registry must render every family.
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"# TYPE minbft_batches_executed_total counter",
		"# TYPE minbft_commit_latency_seconds histogram",
		"minbft_commit_latency_seconds_bucket{replica=\"p0\",le=\"+Inf\"}",
		"# TYPE tcpnet_tx_frames_total counter",
		"sig_lookups_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
}
