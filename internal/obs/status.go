package obs

// Per-replica status reporting: the introspection-plane contract between
// replicas (minbft, pbft), the debug HTTP surface (/debug/status), and the
// cluster-level aggregator/auditor (internal/watch).
//
// A Status is one replica's self-reported view of its own protocol state,
// built on the replica's run goroutine so every field is one consistent cut
// (no torn reads across view changes or checkpoint advances). The fields
// are exactly the claims the safety auditor cross-checks between replicas:
// the stable checkpoint digest (equivocation evidence when two replicas
// disagree at one count), the trusted-counter high-water marks (regression
// evidence), the execution watermark, and the active lease.
//
// Status lives in obs — not in a protocol package — so the aggregator, the
// Byzantine test actors (internal/byz), and the HTTP layer can share the
// type without importing consensus code.

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// CheckpointStatus is a replica's latest stable checkpoint claim.
type CheckpointStatus struct {
	// Count is the checkpoint position: executed fresh batches for MinBFT,
	// the stable sequence number for PBFT.
	Count uint64 `json:"count"`
	// Digest is the hex state digest the replica's certificate covers. Two
	// replicas of one group reporting different digests at the same count
	// is safety-violation evidence.
	Digest string `json:"digest"`
}

// LeaseStatus is an active leader lease as reported by its holder. Only the
// holder reports one; grantors report nothing (their promise is not a
// lease). Two holders for one (shard, term) is mutual-exclusion evidence.
type LeaseStatus struct {
	Holder      int    `json:"holder"`
	Term        uint64 `json:"term"` // the view the lease belongs to
	ExpiresInMS int64  `json:"expires_in_ms"`
}

// Status is one replica's introspection snapshot (see /debug/status and
// internal/watch).
type Status struct {
	Protocol string `json:"protocol"`        // "minbft" or "pbft"
	Replica  int    `json:"replica"`         // process ID within the group
	Shard    string `json:"shard,omitempty"` // stamped by the serving layer, not the replica

	View        uint64 `json:"view"`
	Ready       bool   `json:"ready"`
	ReadyReason string `json:"ready_reason,omitempty"` // which probe fails while !Ready
	// Stale marks a degraded snapshot assembled off the run goroutine (the
	// event loop did not answer in time, typically because the replica is
	// wedged or closing). Counters in a stale status may read zero; the
	// auditor's monotonicity rules skip stale samples.
	Stale bool `json:"stale,omitempty"`

	// Progress watermarks. ExecCount counts executed batches in total order
	// (MinBFT: fresh batches, the checkpoint count; PBFT: contiguous
	// executed sequence numbers). ProposedBatches and ExecutedRequests are
	// process-lifetime counters (they reset on restart, unlike the trusted
	// counters below).
	ExecCount        uint64 `json:"exec_count"`
	ProposedBatches  uint64 `json:"proposed_batches"`
	ExecutedRequests uint64 `json:"executed_requests"`

	// Admission / queue gauges.
	PendingRequests int `json:"pending_requests"`
	OpenSlots       int `json:"open_slots"`
	InFlightBatches int `json:"in_flight_batches"`
	QueuedReads     int `json:"queued_reads"`

	Checkpoint *CheckpointStatus `json:"checkpoint,omitempty"`

	// TrustedCounters maps counter names to hardware-backed high-water
	// marks (MinBFT: "usig", the TrInc attestation sequence). Empty for
	// protocols without trusted hardware — which is exactly the
	// hybrid-trust distinction: the auditor knows which replicas' claims
	// are attestation-backed and which rest on signatures alone.
	TrustedCounters map[string]uint64 `json:"trusted_counters,omitempty"`

	Lease *LeaseStatus `json:"lease,omitempty"`
}

// StatusProvider is implemented by replicas that can report a Status
// (minbft.Replica, pbft.Replica). Status must be safe to call from any
// goroutine and must return even when the replica is wedged or closed
// (degraded, Stale snapshots satisfy that).
type StatusProvider interface {
	Status() Status
}

// SetBuildInfo publishes the conventional `unidir_build_info` gauge: value
// 1, with the module version, the Go runtime version, and any extra label
// pairs (e.g. "protocol", "minbft"; "binary", "unidir-doctor"). Dashboards
// join it against other series to attribute metrics to a build. Nil
// registry is a no-op.
func SetBuildInfo(reg *Registry, pairs ...any) {
	if reg == nil {
		return
	}
	labels := append([]any{"version", buildVersion(), "go", runtime.Version()}, pairs...)
	reg.Gauge(Name("unidir_build_info", labels...)).Set(1)
}

// BuildInfoLine is SetBuildInfo for binaries without a metrics surface: a
// one-line human-readable rendering of the same information, printed at
// startup so every binary's output attributes itself to a build.
func BuildInfoLine(binary string) string {
	return fmt.Sprintf("%s version=%s go=%s", binary, buildVersion(), runtime.Version())
}

func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "dev"
}
