package knob

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// capture redirects the package logger to a buffer for the duration of the
// test and returns it.
func capture(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	restore := SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))
	t.Cleanup(restore)
	return &buf
}

func TestIntParsesAliasesAndWarns(t *testing.T) {
	aliases := map[string]int{"on": 64, "off": 1, "0": 1}
	cases := []struct {
		env  string
		want int
		warn bool
	}{
		{"", 64, false},
		{"on", 64, false},
		{"off", 1, false},
		{"0", 1, false},
		{"16", 16, false},
		{"-3", 64, true},  // below min
		{"1.5", 64, true}, // not an integer
		{"bogus", 64, true},
	}
	for _, tc := range cases {
		buf := capture(t)
		t.Setenv("UNIDIR_TEST_INT", tc.env)
		if got := Int("UNIDIR_TEST_INT", 64, 1, aliases); got != tc.want {
			t.Errorf("Int(%q) = %d, want %d", tc.env, got, tc.want)
		}
		if warned := buf.Len() > 0; warned != tc.warn {
			t.Errorf("Int(%q): warned=%v, want %v (log: %s)", tc.env, warned, tc.warn, buf)
		}
	}
}

func TestFloatParsesAliasesAndWarns(t *testing.T) {
	aliases := map[string]float64{"off": 0, "0": 0}
	cases := []struct {
		env  string
		want float64
		warn bool
	}{
		{"", 0, false},
		{"off", 0, false},
		{"0", 0, false},
		{"5000", 5000, false},
		{"2.5", 2.5, false},
		{"-1", 0, true},
		{"fast", 0, true},
	}
	for _, tc := range cases {
		buf := capture(t)
		t.Setenv("UNIDIR_TEST_FLOAT", tc.env)
		if got := Float("UNIDIR_TEST_FLOAT", 0, 0, aliases); got != tc.want {
			t.Errorf("Float(%q) = %g, want %g", tc.env, got, tc.want)
		}
		if warned := buf.Len() > 0; warned != tc.warn {
			t.Errorf("Float(%q): warned=%v, want %v (log: %s)", tc.env, warned, tc.warn, buf)
		}
	}
}

func TestDurationParsesAliasesAndWarns(t *testing.T) {
	const def = 100 * time.Microsecond
	aliases := map[string]time.Duration{"on": def, "off": 0, "0": 0}
	cases := []struct {
		env  string
		want time.Duration
		warn bool
	}{
		{"", def, false},
		{"on", def, false},
		{"off", 0, false},
		{"250us", 250 * time.Microsecond, false},
		{"1ms", time.Millisecond, false},
		{"-1ms", def, true}, // negative durations rejected
		{"100", def, true},  // bare number is not a duration
		{"soon", def, true},
	}
	for _, tc := range cases {
		buf := capture(t)
		t.Setenv("UNIDIR_TEST_DUR", tc.env)
		if got := Duration("UNIDIR_TEST_DUR", def, aliases); got != tc.want {
			t.Errorf("Duration(%q) = %v, want %v", tc.env, got, tc.want)
		}
		if warned := buf.Len() > 0; warned != tc.warn {
			t.Errorf("Duration(%q): warned=%v, want %v (log: %s)", tc.env, warned, tc.warn, buf)
		}
	}
}

func TestChoiceWarnsOnUnknown(t *testing.T) {
	cases := []struct {
		env  string
		want string
		warn bool
	}{
		{"", "min", false},
		{"full", "full", false},
		{"min", "min", false},
		{"partial", "min", true},
	}
	for _, tc := range cases {
		buf := capture(t)
		t.Setenv("UNIDIR_TEST_CHOICE", tc.env)
		if got := Choice("UNIDIR_TEST_CHOICE", "min", "full", "min"); got != tc.want {
			t.Errorf("Choice(%q) = %q, want %q", tc.env, got, tc.want)
		}
		if warned := buf.Len() > 0; warned != tc.warn {
			t.Errorf("Choice(%q): warned=%v, want %v (log: %s)", tc.env, warned, tc.warn, buf)
		}
	}
}

func TestWarningNamesKnobAndValue(t *testing.T) {
	buf := capture(t)
	t.Setenv("UNIDIR_TEST_NAMED", "banana")
	Int("UNIDIR_TEST_NAMED", 7, 1, nil)
	for _, want := range []string{"UNIDIR_TEST_NAMED", "banana", "7"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("warning %q does not mention %q", buf.String(), want)
		}
	}
}

func TestSetLoggerRestores(t *testing.T) {
	var a, b bytes.Buffer
	restoreA := SetLogger(slog.New(slog.NewTextHandler(&a, nil)))
	restoreB := SetLogger(slog.New(slog.NewTextHandler(&b, nil)))
	t.Setenv("UNIDIR_TEST_RESTORE", "nope")
	Int("UNIDIR_TEST_RESTORE", 1, 1, nil)
	if b.Len() == 0 || a.Len() != 0 {
		t.Fatalf("warning went to wrong logger (a=%d bytes, b=%d bytes)", a.Len(), b.Len())
	}
	restoreB()
	Int("UNIDIR_TEST_RESTORE", 1, 1, nil)
	if a.Len() == 0 {
		t.Fatal("restore did not reinstate the previous logger")
	}
	restoreA()
}
