// Package knob centralizes UNIDIR_* environment-knob parsing. Every knob
// follows the same contract: unset means the built-in default, a handful of
// enumerated aliases ("on", "off", "0") select special values, and anything
// else is parsed as the knob's native type. A malformed value — previously
// swallowed silently by each call site — now falls back to the default AND
// logs one slog warning naming the knob and the bad value, so a typo'd
// deployment manifest is visible in the logs instead of silently running
// with defaults.
//
// The package is a leaf (stdlib only) so every layer can use it: internal/smr
// and internal/sig/fastverify import internal/obs, while internal/obs/tracing
// is imported BY internal/obs — a helper living in either of those packages
// would be unreachable from the other side without a cycle.
package knob

import (
	"log/slog"
	"os"
	"strconv"
	"sync/atomic"
	"time"
)

// logger is swappable so tests can capture warnings; nil means
// slog.Default() at call time (respecting later slog.SetDefault calls).
var logger atomic.Pointer[slog.Logger]

// SetLogger redirects the package's malformed-knob warnings to l and
// returns a function restoring the previous destination. Passing nil
// restores the default (slog.Default at warn time).
func SetLogger(l *slog.Logger) (restore func()) {
	prev := logger.Swap(l)
	return func() { logger.Store(prev) }
}

func warn(name, raw string, def any) {
	l := logger.Load()
	if l == nil {
		l = slog.Default()
	}
	l.Warn("ignoring malformed env knob", "knob", name, "value", raw, "using", def)
}

// Int reads the named knob as an integer: def when unset, aliases[v] when v
// matches an alias exactly, k when it parses as an integer >= min, and def
// with a logged warning otherwise.
func Int(name string, def, min int, aliases map[string]int) int {
	return ParseInt(name, os.Getenv(name), def, min, aliases)
}

// ParseInt is Int over an already-read raw value, for knobs that normalize
// their value before parsing (UNIDIR_TRACE's "1/N" form).
func ParseInt(name, v string, def, min int, aliases map[string]int) int {
	if v == "" {
		return def
	}
	if k, ok := aliases[v]; ok {
		return k
	}
	if k, err := strconv.Atoi(v); err == nil && k >= min {
		return k
	}
	warn(name, v, def)
	return def
}

// Float reads the named knob as a float: def when unset, aliases[v] when v
// matches an alias exactly, f when it parses as a float > min, and def with
// a logged warning otherwise.
func Float(name string, def, min float64, aliases map[string]float64) float64 {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	if f, ok := aliases[v]; ok {
		return f
	}
	if f, err := strconv.ParseFloat(v, 64); err == nil && f > min {
		return f
	}
	warn(name, v, def)
	return def
}

// Duration reads the named knob as a time.Duration: def when unset,
// aliases[v] when v matches an alias exactly, d when it parses as a
// non-negative duration string ("250us", "1ms"), and def with a logged
// warning otherwise.
func Duration(name string, def time.Duration, aliases map[string]time.Duration) time.Duration {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	if d, ok := aliases[v]; ok {
		return d
	}
	if d, err := time.ParseDuration(v); err == nil && d >= 0 {
		return d
	}
	warn(name, v, def)
	return def
}

// Choice reads the named knob as an enumerated string: def when unset, v
// when it is one of allowed, and def with a logged warning otherwise.
func Choice(name, def string, allowed ...string) string {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	for _, a := range allowed {
		if v == a {
			return v
		}
	}
	warn(name, v, def)
	return def
}
