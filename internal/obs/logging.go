package obs

import (
	"io"
	"log/slog"
	"sync"
)

// Structured logging for the library's components, on stdlib log/slog. The
// conventions, matching the metrics layer's design constraints:
//
//   - Components take a *slog.Logger through a WithLogger-style option and
//     default to NopLogger, so logging is zero-config and (nearly) zero-cost
//     when absent — no component writes to the process-global slog default.
//   - Every line carries the component and node identity as attrs (added
//     once via NewLogger), and protocol lines add view/seq/batch attrs —
//     key=value fields, never formatted prose.
//   - Lines on a traced code path attach the trace ID under TraceKey, so log
//     lines join up with /debug/spans and the harness span collector.

// TraceKey is the attr key for distributed-trace correlation: lines logged
// on a sampled request's path carry the hex trace ID under this key.
const TraceKey = "trace"

var (
	nopOnce sync.Once
	nop     *slog.Logger
)

// NopLogger returns a logger that discards everything. It is the default
// for components constructed without a WithLogger option, making every
// logging call site unconditionally safe.
func NopLogger() *slog.Logger {
	nopOnce.Do(func() {
		nop = slog.New(slog.NewTextHandler(io.Discard, nil))
	})
	return nop
}

// NewLogger returns a logfmt-style structured logger on w at the given
// level, tagged with the component name and node identity. attrs are extra
// key/value pairs appended to every line.
func NewLogger(w io.Writer, level slog.Level, component string, node any, attrs ...any) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	args := append([]any{"component", component, "node", node}, attrs...)
	return slog.New(h).With(args...)
}

// OrNop returns l, or the discard logger when l is nil — the normalization
// every WithLogger option applies so call sites never nil-check.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return NopLogger()
	}
	return l
}
