package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestHistogramQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	s := r.Snapshot()
	if v, ok := s.HistogramQuantile("h", 0.5); ok || v != 0 {
		t.Fatalf("empty snapshot quantile = (%v, %v), want (0, false)", v, ok)
	}
	// A registered histogram with zero observations is still "empty".
	r.Histogram("h", []float64{1, 2})
	if v, ok := r.Snapshot().HistogramQuantile("h", 0.5); ok || v != 0 {
		t.Fatalf("zero-count quantile = (%v, %v), want (0, false)", v, ok)
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10})
	for i := 0; i < 4; i++ {
		h.Observe(5)
	}
	s := r.Snapshot()
	// All mass in [0, 10]: the median interpolates to the bucket midpoint.
	if v, ok := s.HistogramQuantile("h", 0.5); !ok || v != 5 {
		t.Fatalf("q0.5 = (%v, %v), want (5, true)", v, ok)
	}
	if v, ok := s.HistogramQuantile("h", 1); !ok || v != 10 {
		t.Fatalf("q1 = (%v, %v), want (10, true)", v, ok)
	}
	// Observations past the last bound land in +Inf; the estimate clamps
	// to the largest finite bound.
	h.Observe(100)
	if v, ok := r.Snapshot().HistogramQuantile("h", 1); !ok || v != 10 {
		t.Fatalf("q1 with +Inf mass = (%v, %v), want (10, true)", v, ok)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 3, 3} {
		h.Observe(v)
	}
	s := r.Snapshot()
	// 8 observations; rank(0.5) = 4 falls in the (2, 4] bucket holding 5
	// observations after a cumulative 3: 2 + 2*(4-3)/5 = 2.4.
	v, ok := s.HistogramQuantile("h", 0.5)
	if !ok || math.Abs(v-2.4) > 1e-9 {
		t.Fatalf("q0.5 = (%v, %v), want (2.4, true)", v, ok)
	}
	// Out-of-range q clamps.
	if v, ok := s.HistogramQuantile("h", -1); !ok || v != 0 {
		t.Fatalf("q<0 = (%v, %v), want (0, true)", v, ok)
	}
}

func TestHistogramQuantileMergesLabeledSeries(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{1, 2}
	r.Histogram(Name("h", "shard", 0), bounds).Observe(0.5)
	r.Histogram(Name("h", "shard", 1), bounds).Observe(1.5)
	r.Histogram(Name("h", "shard", 1), bounds).Observe(1.5)
	s := r.Snapshot()
	// Merged counts: [1, 2]. rank(0.9) = 2.7 -> (1, 2] bucket.
	v, ok := s.HistogramQuantile("h", 0.9)
	if !ok || v <= 1 || v > 2 {
		t.Fatalf("merged q0.9 = (%v, %v), want in (1, 2]", v, ok)
	}
}

func TestSetBuildInfo(t *testing.T) {
	r := NewRegistry()
	SetBuildInfo(r, "protocol", "minbft")
	s := r.Snapshot()
	found := ""
	for name, v := range s.Gauges {
		if baseOf(name) == "unidir_build_info" {
			found = name
			if v != 1 {
				t.Fatalf("unidir_build_info = %d, want 1", v)
			}
		}
	}
	if found == "" {
		t.Fatalf("unidir_build_info gauge missing: %v", s.Gauges)
	}
	for _, label := range []string{`version=`, `go=`, `protocol="minbft"`} {
		if !strings.Contains(found, label) {
			t.Fatalf("unidir_build_info name %q missing label %s", found, label)
		}
	}
	SetBuildInfo(nil) // must not panic
}

type fixedStatus struct{ st Status }

func (f fixedStatus) Status() Status { return f.st }

func TestHandlerStatusEndpoint(t *testing.T) {
	r := NewRegistry()
	h := Handler(r,
		WithStatus("0", fixedStatus{Status{Protocol: "minbft", Replica: 0, View: 2}}),
		WithStatus("1", fixedStatus{Status{Protocol: "minbft", Replica: 1, Shard: "explicit"}}),
	)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/status", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/status = %d, want 200", rec.Code)
	}
	var body struct {
		Replicas []Status `json:"replicas"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(body.Replicas) != 2 {
		t.Fatalf("replicas = %d, want 2", len(body.Replicas))
	}
	// Empty shard is stamped from the option; explicit shard wins.
	if body.Replicas[0].Shard != "0" || body.Replicas[1].Shard != "explicit" {
		t.Fatalf("shards = %q, %q", body.Replicas[0].Shard, body.Replicas[1].Shard)
	}

	// Index lists the endpoint.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "/debug/status") {
		t.Fatalf("index = %d %q, want 200 mentioning /debug/status", rec.Code, rec.Body.String())
	}

	// Unknown paths still 404 despite the "/" index handler.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("/nope = %d, want 404", rec.Code)
	}
}

func TestReadyzReason(t *testing.T) {
	ready, reason := false, "view change in progress"
	h := Handler(NewRegistry(), WithReadinessDetail(func() (bool, string) {
		return ready, reason
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "not ready: view change in progress") {
		t.Fatalf("/readyz = %d %q", rec.Code, rec.Body.String())
	}
	ready = true
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("/readyz after ready = %d, want 200", rec.Code)
	}
}

// TestLabeledConcurrentScrape exercises the doctor's steady state under the
// race detector: label-view writers mutating shared-store metrics while
// scrapers snapshot and render concurrently.
func TestLabeledConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	const shards, iters = 4, 200
	var wg sync.WaitGroup
	for g := 0; g < shards; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lr := r.Labeled("shard", g)
			c := lr.Counter("writes_total")
			h := lr.Histogram("latency", []float64{1, 2, 4})
			for i := 0; i < iters; i++ {
				c.Inc()
				lr.Gauge("depth").Set(int64(i))
				h.Observe(float64(i % 5))
				// New names mid-flight force store-map growth under scrape.
				lr.Counter(Name("dyn", "i", i%8)).Inc()
			}
		}(g)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				snap := r.Snapshot()
				_ = snap.CounterSum("writes_total")
				_, _ = snap.HistogramQuantile("latency", 0.99)
				var sb strings.Builder
				r.WritePrometheus(&sb)
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().CounterSum("writes_total"); got != shards*iters {
		t.Fatalf("writes_total = %d, want %d", got, shards*iters)
	}
}
