// Cross-node span collection: merge per-node buffers, align clocks, and
// attribute each request's client-observed latency to protocol phases.
package tracing

import (
	"sort"
	"time"
)

// Merge concatenates the spans from every buffer (any nil buffers are
// skipped) and sorts them by start time.
func Merge(bufs ...*SpanBuffer) []Span {
	var out []Span
	for _, b := range bufs {
		out = append(out, b.Spans()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// AlignClocks shifts each node's spans by a per-node offset chosen so that
// causality holds across nodes: a child span observed on node B cannot start
// before the parent span that caused it started on node A. Each cross-node
// parent->child edge (span parents and batch links both count) is one
// observation of the pair's clock offset; the maximum violation per node is
// the clamp applied. Within one process the offsets are zero and this is a
// no-op; across real machines it bounds skew by the one-way latency of the
// fastest message on each link, which is exactly the precision the phase
// breakdown needs.
//
// The input is not modified; the returned slice has adjusted Start/End.
func AlignClocks(spans []Span) []Span {
	out := append([]Span(nil), spans...)
	byID := make(map[SpanID]int, len(out))
	byTrace := make(map[TraceID][]int, len(out))
	for i, s := range out {
		byID[s.ID] = i
		byTrace[s.Trace] = append(byTrace[s.Trace], i)
	}
	offset := make(map[string]time.Duration)

	// edge reports the causal constraint "child on nc started no earlier
	// than parent on np", bumping nc's offset when violated.
	edge := func(np, nc string, pStart, cStart time.Time) bool {
		if np == nc {
			return false
		}
		need := pStart.Add(offset[np]).Sub(cStart.Add(offset[nc]))
		if need > 0 {
			offset[nc] += need
			return true
		}
		return false
	}

	// Iterate to a fixpoint: bumping one node can re-violate edges into
	// another. Bounded by the number of distinct nodes plus one.
	for pass := 0; pass < len(out)+1; pass++ {
		changed := false
		for i := range out {
			s := &out[i]
			if !s.Parent.IsZero() {
				if pi, ok := byID[s.Parent]; ok {
					changed = edge(out[pi].Node, s.Node, out[pi].Start, s.Start) || changed
				}
			}
			// A batch span is caused by the sampled requests it links: it
			// cannot start before any of their roots did.
			for _, l := range s.Links {
				for _, ri := range byTrace[l.Trace] {
					if out[ri].ID == l.Span {
						changed = edge(out[ri].Node, s.Node, out[ri].Start, s.Start) || changed
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	for i := range out {
		if off := offset[out[i].Node]; off != 0 {
			out[i].Start = out[i].Start.Add(off)
			out[i].End = out[i].End.Add(off)
		}
	}
	return out
}

// Phase is one attributed slice of a request's latency.
type Phase struct {
	Name string        `json:"name"`
	Dur  time.Duration `json:"ns"`
}

// RequestBreakdown attributes one sampled request's client-observed latency
// to protocol phases. Phases always ends with "other": the residual
// (network transit, queueing, scheduling) that makes the phase durations sum
// exactly to Total.
type RequestBreakdown struct {
	Trace  TraceID       `json:"trace"`
	Node   string        `json:"node"` // node that proposed the carrying batch
	Total  time.Duration `json:"total_ns"`
	Attest time.Duration `json:"attest_ns"` // ui-attest / sign, nested inside propose
	Phases []Phase       `json:"phases"`
}

// phaseOrder is the span taxonomy in causal order; "other" absorbs the
// remainder so the breakdown sums to the client-observed latency.
var phaseOrder = []string{"batch-wait", "propose", "commit-quorum", "execute", "reply"}

// Breakdown computes a per-request latency attribution from a merged,
// clock-aligned span set. Requests are traces rooted at a client-submit
// span; phase spans are found on the request's own trace (batch-wait,
// reply) and on the batch trace that links it (propose, commit-quorum,
// execute). Where several nodes recorded the same phase, the breakdown
// follows one coherent path: batch formation on the proposing primary, then
// commit/execute/reply on the replica whose reply completed the client's
// quorum (the critical path — the primary's own tail can outlast the client).
func Breakdown(spans []Span) []RequestBreakdown {
	byTrace := make(map[TraceID][]Span)
	for _, s := range spans {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	// Map each request trace to the batch-trace spans that link it.
	batchFor := make(map[TraceID][]Span)
	for _, s := range spans {
		if s.Name != "propose" {
			continue
		}
		for _, l := range s.Links {
			batchFor[l.Trace] = append(batchFor[l.Trace], byTrace[s.Trace]...)
		}
	}

	var out []RequestBreakdown
	for trace, ss := range byTrace {
		var root *Span
		for i := range ss {
			if ss[i].Name == "client-submit" {
				root = &ss[i]
				break
			}
		}
		if root == nil {
			continue // a batch trace, or a partial request trace
		}
		bd := RequestBreakdown{Trace: trace, Total: root.Duration()}

		batch := batchFor[trace]
		for _, s := range batch {
			if s.Name == "propose" {
				bd.Node = s.Node
				break
			}
		}
		// The client completes on the fastest quorum of replies, so the
		// primary's own commit/execute/reply path can end after the client
		// already finished. The replica whose reply completed the quorum
		// defines the critical path; the best candidate the spans can name
		// is the latest reply ending no later than the root did — earlier
		// replies leave slack (attributed to "other"), later ones were not
		// counted by the client.
		critical := ""
		var critEnd time.Time
		for _, s := range ss {
			if s.Name != "reply" || s.End.After(root.End) {
				continue
			}
			if critical == "" || s.End.After(critEnd) {
				critical, critEnd = s.Node, s.End
			}
		}
		if critical == "" {
			// Residual clock skew pushed every reply past the root's end;
			// the earliest overshoots least.
			for _, s := range ss {
				if s.Name == "reply" && (critical == "" || s.End.Before(critEnd)) {
					critical, critEnd = s.Node, s.End
				}
			}
		}
		pick := func(pool []Span, name, prefer string) (Span, bool) {
			var got Span
			var ok bool
			for _, s := range pool {
				if s.Name != name {
					continue
				}
				// Prefer the named node's copy when several nodes recorded
				// the same phase (e.g. every replica replies).
				if !ok || (s.Node == prefer && got.Node != prefer) {
					got, ok = s, true
				}
			}
			return got, ok
		}
		for _, name := range phaseOrder {
			pool, prefer := ss, bd.Node
			switch name {
			case "propose":
				pool = batch
			case "commit-quorum", "execute":
				pool, prefer = batch, critical
			case "reply":
				prefer = critical
			}
			if s, ok := pick(pool, name, prefer); ok {
				bd.Phases = append(bd.Phases, Phase{Name: name, Dur: s.Duration()})
			}
		}
		if s, ok := pick(batch, "ui-attest", bd.Node); ok {
			bd.Attest = s.Duration()
		}
		var sum time.Duration
		for _, p := range bd.Phases {
			sum += p.Dur
		}
		bd.Phases = append(bd.Phases, Phase{Name: "other", Dur: bd.Total - sum})
		out = append(out, bd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Trace.String() < out[j].Trace.String() })
	return out
}

// Summary averages a set of breakdowns phase-by-phase (requests missing a
// phase contribute zero to it), for the human-readable table.
type Summary struct {
	Requests int           `json:"requests"`
	Total    time.Duration `json:"total_ns"`
	Attest   time.Duration `json:"attest_ns"`
	Phases   []Phase       `json:"phases"`
}

// Summarize averages breakdowns into one row per phase.
func Summarize(bds []RequestBreakdown) Summary {
	sum := Summary{Requests: len(bds)}
	if len(bds) == 0 {
		return sum
	}
	totals := make(map[string]time.Duration)
	var order []string
	for _, bd := range bds {
		sum.Total += bd.Total
		sum.Attest += bd.Attest
		for _, p := range bd.Phases {
			if _, seen := totals[p.Name]; !seen {
				order = append(order, p.Name)
			}
			totals[p.Name] += p.Dur
		}
	}
	n := time.Duration(len(bds))
	sum.Total /= n
	sum.Attest /= n
	for _, name := range order {
		sum.Phases = append(sum.Phases, Phase{Name: name, Dur: totals[name] / n})
	}
	return sum
}
