// Package tracing is a dependency-free distributed tracer for the unidir
// protocols, in the style of W3C trace-context: a 16-byte trace ID names one
// end-to-end request (or batch), 8-byte span IDs name the operations it
// passed through, and a sampled flag rides along so every hop agrees on
// whether to record. Contexts cross the wire as a fixed 25-byte block behind
// a version-gated frame flag (see tcpnet), so traces follow requests across
// real process boundaries, not just goroutines.
//
// Sampling is head-based: the client decides 1-in-N at the root span and
// every downstream hop obeys the flag. When the decision is "no", every
// tracer call is one branch on a nil handle — no allocation, no clock read —
// which keeps the hot path unmeasurably close to tracing-off.
package tracing

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unidir/internal/obs/knob"
)

// TraceID names one end-to-end request or batch.
type TraceID [16]byte

// SpanID names one operation within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// MarshalJSON renders the ID as a hex string.
func (t TraceID) MarshalJSON() ([]byte, error) { return []byte(`"` + t.String() + `"`), nil }

// MarshalJSON renders the ID as a hex string.
func (s SpanID) MarshalJSON() ([]byte, error) { return []byte(`"` + s.String() + `"`), nil }

// UnmarshalJSON parses the hex form written by MarshalJSON.
func (t *TraceID) UnmarshalJSON(b []byte) error { return unhex(t[:], b) }

// UnmarshalJSON parses the hex form written by MarshalJSON.
func (s *SpanID) UnmarshalJSON(b []byte) error { return unhex(s[:], b) }

func unhex(dst []byte, b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return errors.New("tracing: id not a JSON string")
	}
	raw, err := hex.DecodeString(string(b[1 : len(b)-1]))
	if err != nil || len(raw) != len(dst) {
		return fmt.Errorf("tracing: bad id %q", b)
	}
	copy(dst, raw)
	return nil
}

// Context is the propagated trace state: which trace, which parent span, and
// whether the trace is sampled. The zero Context means "no trace".
type Context struct {
	Trace   TraceID `json:"trace"`
	Span    SpanID  `json:"span"`
	Sampled bool    `json:"sampled"`
}

// Valid reports whether the context carries a trace.
func (c Context) Valid() bool { return !c.Trace.IsZero() }

// ContextWireSize is the fixed encoded size of a Context: 16-byte trace ID,
// 8-byte span ID, 1 flag byte.
const ContextWireSize = 25

const flagSampled = 1 << 0

// AppendBinary appends the fixed 25-byte wire form of c to dst.
func (c Context) AppendBinary(dst []byte) []byte {
	dst = append(dst, c.Trace[:]...)
	dst = append(dst, c.Span[:]...)
	var flags byte
	if c.Sampled {
		flags |= flagSampled
	}
	return append(dst, flags)
}

// DecodeContext parses the fixed 25-byte wire form. Extra trailing bytes are
// an error: the block is version-gated by the frame flag, not self-sizing.
func DecodeContext(b []byte) (Context, error) {
	if len(b) != ContextWireSize {
		return Context{}, fmt.Errorf("tracing: context block is %d bytes, want %d", len(b), ContextWireSize)
	}
	var c Context
	copy(c.Trace[:], b[:16])
	copy(c.Span[:], b[16:24])
	c.Sampled = b[24]&flagSampled != 0
	return c, nil
}

// Span is one completed operation, as stored in a SpanBuffer and serialized
// to /debug/spans. Start/End are the local node's clock; the collector
// aligns clocks across nodes before attributing latency.
type Span struct {
	Trace  TraceID   `json:"trace"`
	ID     SpanID    `json:"id"`
	Parent SpanID    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Node   string    `json:"node"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	// Links tie a batch span to the per-request traces it carries.
	Links []Context `json:"links,omitempty"`
}

// Duration is the span's recorded wall time.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Active is a live span handle. All methods are nil-safe: an unsampled or
// tracing-disabled code path holds a nil *Active and pays one branch per
// call.
type Active struct {
	t  *Tracer
	sp Span
}

var activePool = sync.Pool{New: func() any { return new(Active) }}

// Context returns the propagation context naming this span as parent.
func (a *Active) Context() Context {
	if a == nil {
		return Context{}
	}
	return Context{Trace: a.sp.Trace, Span: a.sp.ID, Sampled: true}
}

// Link records that this span carries the request named by c (batch spans
// link the sampled member requests they coalesce).
func (a *Active) Link(c Context) {
	if a == nil || !c.Valid() {
		return
	}
	a.sp.Links = append(a.sp.Links, c)
}

// End completes the span at time.Now and commits it to the tracer's buffer.
// The handle must not be used afterwards.
func (a *Active) End() { a.EndAt(time.Time{}) }

// EndAt completes the span at the given instant (zero means now).
func (a *Active) EndAt(at time.Time) {
	if a == nil {
		return
	}
	if at.IsZero() {
		at = time.Now()
	}
	a.sp.End = at
	if a.t != nil && a.t.buf != nil {
		a.t.buf.add(a.sp)
	}
	a.sp = Span{}
	a.t = nil
	activePool.Put(a)
}

// Tracer mints spans for one node. A nil Tracer is valid and records
// nothing. Safe for concurrent use.
type Tracer struct {
	node string
	rate uint64 // sample 1 in rate root spans; 0 disables
	buf  *SpanBuffer

	ctr atomic.Uint64 // root-span counter for the 1-in-rate decision
	ids atomic.Uint64 // splitmix64 state for ID generation
}

// NewTracer creates a tracer labeled with the node's name, head-sampling
// 1-in-rate root spans (rate <= 0 disables; rate 1 samples everything) into
// buf (nil means spans are minted but dropped).
func NewTracer(node string, rate int, buf *SpanBuffer) *Tracer {
	t := &Tracer{node: node, buf: buf}
	if rate > 0 {
		t.rate = uint64(rate)
	}
	var seed [8]byte
	_, _ = rand.Read(seed[:])
	t.ids.Store(binary.LittleEndian.Uint64(seed[:]))
	return t
}

// Node returns the tracer's node label ("" for a nil tracer).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Buffer returns the buffer completed spans land in.
func (t *Tracer) Buffer() *SpanBuffer {
	if t == nil {
		return nil
	}
	return t.buf
}

// rnd returns a fresh nonzero pseudo-random 64-bit value (splitmix64 over an
// atomic counter: lock-free, unique per call, seeded from crypto/rand).
func (t *Tracer) rnd() uint64 {
	for {
		x := t.ids.Add(0x9E3779B97F4A7C15)
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	binary.LittleEndian.PutUint64(id[:8], t.rnd())
	binary.LittleEndian.PutUint64(id[8:], t.rnd())
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	binary.LittleEndian.PutUint64(id[:], t.rnd())
	return id
}

// Root starts a new trace, applying the head-sampling decision. It returns
// nil (record nothing, propagate nothing) for the unsampled majority — that
// nil check is the entire hot-path cost.
func (t *Tracer) Root(name string) *Active {
	if t == nil || t.rate == 0 {
		return nil
	}
	if t.rate > 1 && t.ctr.Add(1)%t.rate != 0 {
		return nil
	}
	return t.start(name, t.newTraceID(), SpanID{}, time.Now())
}

// Start begins a child span of parent. Returns nil unless the parent is a
// valid sampled context, so unsampled requests stay free downstream.
func (t *Tracer) Start(name string, parent Context) *Active {
	return t.StartAt(name, parent, time.Time{})
}

// StartAt is Start with an explicit begin instant (zero means now); it
// backdates spans whose beginning was only worth remembering if the request
// turned out to be sampled (e.g. batch-wait, measured from arrival at
// propose time).
func (t *Tracer) StartAt(name string, parent Context, at time.Time) *Active {
	if t == nil || !parent.Valid() || !parent.Sampled {
		return nil
	}
	if at.IsZero() {
		at = time.Now()
	}
	return t.start(name, parent.Trace, parent.Span, at)
}

// Fork starts a new trace unconditionally (no sampling decision). Batch
// spans use it: a batch is its own trace, created exactly when at least one
// sampled request is aboard, with Links back to the member requests.
func (t *Tracer) Fork(name string) *Active {
	if t == nil {
		return nil
	}
	return t.start(name, t.newTraceID(), SpanID{}, time.Now())
}

func (t *Tracer) start(name string, trace TraceID, parent SpanID, at time.Time) *Active {
	a := activePool.Get().(*Active)
	a.t = t
	a.sp = Span{
		Trace:  trace,
		ID:     t.newSpanID(),
		Parent: parent,
		Name:   name,
		Node:   t.node,
		Start:  at,
	}
	return a
}

// SpanBuffer is a bounded ring of completed spans; when full, the oldest are
// overwritten. Safe for concurrent use.
type SpanBuffer struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total uint64
}

// NewSpanBuffer creates a buffer holding the last capacity spans (min 1).
func NewSpanBuffer(capacity int) *SpanBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanBuffer{buf: make([]Span, 0, capacity)}
}

func (b *SpanBuffer) add(s Span) {
	if b == nil {
		return
	}
	// Completed spans are immutable records: copy the Links slice so the
	// pooled Active's reuse cannot alias into the buffer.
	if len(s.Links) > 0 {
		s.Links = append([]Context(nil), s.Links...)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.total++
	if len(b.buf) < cap(b.buf) {
		b.buf = append(b.buf, s)
		return
	}
	b.buf[b.next] = s
	b.next = (b.next + 1) % len(b.buf)
}

// Spans returns the buffered spans, oldest first.
func (b *SpanBuffer) Spans() []Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Span, 0, len(b.buf))
	out = append(out, b.buf[b.next:]...)
	out = append(out, b.buf[:b.next]...)
	return out
}

// Len returns the number of buffered spans.
func (b *SpanBuffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Total returns the number of spans ever recorded, including overwritten
// ones.
func (b *SpanBuffer) Total() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// DefaultSampleRate reads the UNIDIR_TRACE knob: unset means 1-in-64,
// "off"/"0" disables, "on"/"1" samples everything, "1/N" or a bare integer N
// samples 1-in-N. Unparseable values fall back to the default with a logged
// warning (see internal/obs/knob).
func DefaultSampleRate() int {
	v := strings.ToLower(strings.TrimSpace(os.Getenv("UNIDIR_TRACE")))
	if rest, ok := strings.CutPrefix(v, "1/"); ok {
		v = rest
	}
	return knob.ParseInt("UNIDIR_TRACE", v, 64, 0,
		map[string]int{"off": 0, "on": 1})
}
