package tracing

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestContextWireRoundTrip(t *testing.T) {
	tr := NewTracer("n0", 1, NewSpanBuffer(8))
	sp := tr.Root("op")
	c := sp.Context()
	sp.End()
	if !c.Valid() || !c.Sampled {
		t.Fatalf("root context invalid: %+v", c)
	}
	enc := c.AppendBinary(nil)
	if len(enc) != ContextWireSize {
		t.Fatalf("encoded size = %d, want %d", len(enc), ContextWireSize)
	}
	got, err := DecodeContext(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip: got %+v, want %+v", got, c)
	}
	// Unsampled flag round-trips too.
	c.Sampled = false
	got, err = DecodeContext(c.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Sampled {
		t.Fatal("sampled flag leaked through")
	}
	if _, err := DecodeContext(enc[:24]); err == nil {
		t.Fatal("short block decoded without error")
	}
	if _, err := DecodeContext(append(enc, 0)); err == nil {
		t.Fatal("long block decoded without error")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if sp := tr.Root("x"); sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	var sp *Active
	sp.Link(Context{})
	sp.End() // must not panic
	if c := sp.Context(); c.Valid() {
		t.Fatal("nil span has a context")
	}
	var buf *SpanBuffer
	if buf.Len() != 0 || buf.Spans() != nil || buf.Total() != 0 {
		t.Fatal("nil buffer not empty")
	}
	// Disabled tracer: rate 0.
	tr = NewTracer("n0", 0, nil)
	if sp := tr.Root("x"); sp != nil {
		t.Fatal("rate-0 tracer minted a span")
	}
	// Unsampled parent: no child.
	tr = NewTracer("n0", 1, nil)
	if sp := tr.Start("x", Context{}); sp != nil {
		t.Fatal("invalid parent minted a span")
	}
}

func TestSamplingRate(t *testing.T) {
	tr := NewTracer("n0", 4, NewSpanBuffer(1024))
	sampled := 0
	for i := 0; i < 400; i++ {
		if sp := tr.Root("op"); sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 100 {
		t.Fatalf("1-in-4 sampling took %d of 400", sampled)
	}
}

func TestSpanBufferRing(t *testing.T) {
	buf := NewSpanBuffer(4)
	tr := NewTracer("n0", 1, buf)
	for i := 0; i < 7; i++ {
		sp := tr.Root("op")
		sp.sp.Start = time.Unix(int64(i), 0)
		sp.End()
	}
	if buf.Len() != 4 || buf.Total() != 7 {
		t.Fatalf("len=%d total=%d, want 4/7", buf.Len(), buf.Total())
	}
	spans := buf.Spans()
	for i, s := range spans {
		if want := time.Unix(int64(3+i), 0); !s.Start.Equal(want) {
			t.Fatalf("span %d start %v, want %v (oldest-first eviction)", i, s.Start, want)
		}
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	buf := NewSpanBuffer(4)
	tr := NewTracer("replica-0", 1, buf)
	root := tr.Root("client-submit")
	child := tr.Start("reply", root.Context())
	child.Link(root.Context())
	child.End()
	root.End()
	blob, err := json.Marshal(buf.Spans())
	if err != nil {
		t.Fatal(err)
	}
	var back []Span
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Name != "reply" || back[1].Name != "client-submit" {
		t.Fatalf("round trip lost spans: %s", blob)
	}
	if back[0].Trace != back[1].Trace || back[0].Parent != back[1].ID {
		t.Fatal("parent linkage lost in JSON round trip")
	}
	if len(back[0].Links) != 1 || back[0].Links[0].Span != back[1].ID {
		t.Fatal("links lost in JSON round trip")
	}
}

func TestConcurrentSpans(t *testing.T) {
	buf := NewSpanBuffer(4096)
	tr := NewTracer("n0", 1, buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Root("op")
				child := tr.Start("child", sp.Context())
				child.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := buf.Total(); got != 8*200*2 {
		t.Fatalf("recorded %d spans, want %d", got, 8*200*2)
	}
	seen := make(map[SpanID]bool)
	for _, s := range buf.Spans() {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %v", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestDefaultSampleRate(t *testing.T) {
	cases := []struct {
		env  string
		want int
	}{
		{"", 64}, {"off", 0}, {"0", 0}, {"on", 1}, {"1", 1},
		{"1/64", 64}, {"1/8", 8}, {"16", 16}, {"bogus", 64}, {"-3", 64},
	}
	for _, c := range cases {
		t.Setenv("UNIDIR_TRACE", c.env)
		if got := DefaultSampleRate(); got != c.want {
			t.Errorf("UNIDIR_TRACE=%q: got %d, want %d", c.env, got, c.want)
		}
	}
}
