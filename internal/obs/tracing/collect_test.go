package tracing

import (
	"testing"
	"time"
)

// mkSpan builds a span record directly, with millisecond offsets from a
// fixed epoch, so collector tests control clocks exactly.
func mkSpan(trace TraceID, id, parent SpanID, name, node string, startMS, endMS int64) Span {
	epoch := time.Unix(1000, 0)
	return Span{
		Trace: trace, ID: id, Parent: parent, Name: name, Node: node,
		Start: epoch.Add(time.Duration(startMS) * time.Millisecond),
		End:   epoch.Add(time.Duration(endMS) * time.Millisecond),
	}
}

func tid(b byte) TraceID { var t TraceID; t[0] = b; return t }
func sid(b byte) SpanID  { var s SpanID; s[0] = b; return s }

func TestAlignClocksClampsSkewedChild(t *testing.T) {
	// Parent on client starts at 100ms; child on replica-1 claims 40ms
	// because replica-1's clock runs 80ms behind. Alignment must shift all
	// of replica-1 forward by >= 60ms so the child no longer precedes its
	// cause.
	req := tid(1)
	spans := []Span{
		mkSpan(req, sid(1), SpanID{}, "client-submit", "client", 100, 300),
		mkSpan(req, sid(2), sid(1), "reply", "replica-1", 40, 50),
	}
	aligned := AlignClocks(spans)
	var parent, child Span
	for _, s := range aligned {
		switch s.Name {
		case "client-submit":
			parent = s
		case "reply":
			child = s
		}
	}
	if child.Start.Before(parent.Start) {
		t.Fatalf("child still precedes parent after alignment: %v < %v", child.Start, parent.Start)
	}
	if got := child.End.Sub(child.Start); got != 10*time.Millisecond {
		t.Fatalf("alignment changed span duration: %v", got)
	}
	if parent.Start != spans[0].Start {
		t.Fatal("reference node was shifted")
	}
}

func TestAlignClocksUsesLinks(t *testing.T) {
	// The batch propose span links a request root on another node; that is
	// a causal edge even with no span parent crossing nodes.
	req, batch := tid(1), tid(2)
	spans := []Span{
		mkSpan(req, sid(1), SpanID{}, "client-submit", "client", 200, 400),
	}
	p := mkSpan(batch, sid(2), SpanID{}, "propose", "replica-0", 50, 60)
	p.Links = []Context{{Trace: req, Span: sid(1), Sampled: true}}
	spans = append(spans, p)
	aligned := AlignClocks(spans)
	for _, s := range aligned {
		if s.Name == "propose" && s.Start.Before(aligned[0].Start) {
			t.Fatalf("link edge not used: propose at %v before submit at %v", s.Start, aligned[0].Start)
		}
	}
}

func TestBreakdownSumsToClientLatency(t *testing.T) {
	req, batch := tid(1), tid(2)
	spans := []Span{
		mkSpan(req, sid(1), SpanID{}, "client-submit", "client", 0, 100),
		mkSpan(req, sid(2), sid(1), "batch-wait", "replica-0", 10, 20),
		mkSpan(req, sid(3), sid(1), "reply", "replica-0", 85, 90),
		// replica-1's reply is the latest one the client could have counted
		// (it ends before the root does), so it defines the critical path.
		mkSpan(req, sid(4), sid(1), "reply", "replica-1", 80, 99),
		// A reply ending after the root cannot have completed the quorum.
		mkSpan(req, sid(9), sid(1), "reply", "replica-2", 80, 130),
	}
	p := mkSpan(batch, sid(5), SpanID{}, "propose", "replica-0", 20, 35)
	p.Links = []Context{{Trace: req, Span: sid(1), Sampled: true}}
	spans = append(spans, p,
		mkSpan(batch, sid(6), sid(5), "ui-attest", "replica-0", 22, 30),
		mkSpan(batch, sid(7), sid(5), "commit-quorum", "replica-0", 35, 70),
		mkSpan(batch, sid(8), sid(5), "execute", "replica-0", 70, 80),
	)
	bds := Breakdown(spans)
	if len(bds) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(bds))
	}
	bd := bds[0]
	if bd.Node != "replica-0" {
		t.Fatalf("primary attribution = %q", bd.Node)
	}
	if bd.Total != 100*time.Millisecond {
		t.Fatalf("total = %v", bd.Total)
	}
	if bd.Attest != 8*time.Millisecond {
		t.Fatalf("attest = %v", bd.Attest)
	}
	want := map[string]time.Duration{
		"batch-wait":    10 * time.Millisecond,
		"propose":       15 * time.Millisecond,
		"commit-quorum": 35 * time.Millisecond,
		"execute":       10 * time.Millisecond,
		"reply":         19 * time.Millisecond,
		"other":         11 * time.Millisecond,
	}
	var sum time.Duration
	for _, ph := range bd.Phases {
		if want[ph.Name] != ph.Dur {
			t.Errorf("phase %s = %v, want %v", ph.Name, ph.Dur, want[ph.Name])
		}
		sum += ph.Dur
	}
	if sum != bd.Total {
		t.Fatalf("phases sum to %v, total is %v", sum, bd.Total)
	}
	if bd.Phases[len(bd.Phases)-1].Name != "other" {
		t.Fatal("residual phase must be last")
	}

	s := Summarize(bds)
	if s.Requests != 1 || s.Total != bd.Total {
		t.Fatalf("summary %+v", s)
	}
}

func TestBreakdownIgnoresPartialTraces(t *testing.T) {
	// A batch trace with no linked client-submit root yields no breakdown.
	batch := tid(9)
	spans := []Span{mkSpan(batch, sid(1), SpanID{}, "propose", "replica-0", 0, 5)}
	if bds := Breakdown(spans); len(bds) != 0 {
		t.Fatalf("got %d breakdowns from a rootless trace", len(bds))
	}
}

func TestMergeOrdersByStart(t *testing.T) {
	b1, b2 := NewSpanBuffer(4), NewSpanBuffer(4)
	b1.add(mkSpan(tid(1), sid(1), SpanID{}, "b", "n1", 10, 11))
	b2.add(mkSpan(tid(2), sid(2), SpanID{}, "a", "n2", 5, 6))
	got := Merge(b1, nil, b2)
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("merge order wrong: %+v", got)
	}
}
