package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"unidir/internal/obs/tracing"
)

// TestHistogramClampsNegative is the regression test for negative-duration
// observations: a clock anomaly must not poison Sum (it is monotone
// non-decreasing across observations), and each clamp is counted.
func TestHistogramClampsNegative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", LatencyBuckets)
	h.Observe(0.5)
	h.Observe(-3.0) // stepped clock: clamp to 0, count it
	h.Observe(-0.1)

	s := r.Snapshot()
	hs := s.Histograms["lat"]
	if hs.Count != 3 {
		t.Fatalf("count = %d, want 3 (clamped observations still count)", hs.Count)
	}
	if hs.Sum != 0.5 {
		t.Fatalf("sum = %v, want 0.5 (negative values must not reach the sum)", hs.Sum)
	}
	// Both clamped observations land in the first bucket (<= 0.0001).
	if hs.Counts[0] != 2 {
		t.Fatalf("first bucket = %d, want the 2 clamped observations", hs.Counts[0])
	}
	if got := s.Counter("lat_clock_clamps_total"); got != 2 {
		t.Fatalf("lat_clock_clamps_total = %d, want 2", got)
	}

	// Labelled series keep the label block on the companion counter.
	r.Histogram(Name("lat2", "peer", 3), LatencyBuckets).Observe(-1)
	if got := r.Snapshot().Counter(`lat2_clock_clamps_total{peer="3"}`); got != 1 {
		t.Fatalf("labelled clamp counter = %d, want 1", got)
	}

	// A histogram built outside a registry (no clamp counter) must not panic.
	var bare Histogram
	bare.bounds = []float64{1}
	bare.counts = make([]atomic.Uint64, 2)
	bare.Observe(-1)
}

// TestDebugTraceFiltering exercises the /debug/trace ?ring= and ?n= query
// parameters.
func TestDebugTraceFiltering(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 5; i++ {
		r.Trace("consensus", 8).Record("view-change", "view %d", i)
	}
	r.Trace("net", 8).Record("drop", "peer %d", 1)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string, wantStatus int) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	var out map[string][]Event
	if err := json.Unmarshal([]byte(get("/debug/trace?ring=consensus", 200)), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(out) != 1 || len(out["consensus"]) != 5 {
		t.Fatalf("ring filter: got %d rings, %d events", len(out), len(out["consensus"]))
	}

	if err := json.Unmarshal([]byte(get("/debug/trace?ring=consensus&n=2", 200)), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	evs := out["consensus"]
	if len(evs) != 2 {
		t.Fatalf("n=2 kept %d events", len(evs))
	}
	// The limit keeps the most recent events.
	if !strings.Contains(evs[1].Detail, "view 4") || !strings.Contains(evs[0].Detail, "view 3") {
		t.Fatalf("n=2 kept the wrong tail: %+v", evs)
	}

	// n applies per ring with no ring filter.
	if err := json.Unmarshal([]byte(get("/debug/trace?n=1", 200)), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(out["consensus"]) != 1 || len(out["net"]) != 1 {
		t.Fatalf("per-ring limit: %+v", out)
	}

	get("/debug/trace?n=bogus", 400)
	get("/debug/trace?n=-1", 400)
}

// TestHealthAndReadiness covers /healthz (always up) and /readyz driven by a
// WithReadiness probe.
func TestHealthAndReadiness(t *testing.T) {
	var ready atomic.Bool
	srv := httptest.NewServer(Handler(NewRegistry(), WithReadiness(ready.Load)))
	defer srv.Close()

	status := func(path string) int {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("/healthz"); got != 200 {
		t.Fatalf("/healthz = %d, want 200", got)
	}
	if got := status("/readyz"); got != 503 {
		t.Fatalf("/readyz before ready = %d, want 503", got)
	}
	ready.Store(true)
	if got := status("/readyz"); got != 200 {
		t.Fatalf("/readyz after ready = %d, want 200", got)
	}

	// Without a probe, /readyz defaults to ready.
	srv2 := httptest.NewServer(Handler(nil))
	defer srv2.Close()
	resp, err := srv2.Client().Get(srv2.URL + "/readyz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("default /readyz: %v %+v", err, resp)
	}
	resp.Body.Close()
}

// TestDebugSpans serves a span buffer and checks the JSON shape.
func TestDebugSpans(t *testing.T) {
	buf := tracing.NewSpanBuffer(16)
	tr := tracing.NewTracer("n0", 1, buf)
	root := tr.Root("client-submit")
	child := tr.Start("execute", root.Context())
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	srv := httptest.NewServer(Handler(NewRegistry(), WithSpans(buf)))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Total uint64         `json:"total"`
		Spans []tracing.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.Total != 2 || len(body.Spans) != 2 {
		t.Fatalf("spans = %d/%d, want 2/2", body.Total, len(body.Spans))
	}
	if body.Spans[0].Name != "execute" || body.Spans[1].Name != "client-submit" {
		t.Fatalf("unexpected span order/names: %+v", body.Spans)
	}
	if body.Spans[0].Trace != body.Spans[1].Trace {
		t.Fatal("child span lost its parent's trace ID over JSON")
	}
	if body.Spans[0].Duration() <= 0 {
		t.Fatalf("span duration = %v", body.Spans[0].Duration())
	}
}
