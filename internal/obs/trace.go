package obs

import (
	"fmt"
	"sync"
	"time"
)

// Event is one entry in a Trace ring: a protocol-level occurrence worth
// keeping around for postmortems (view change, checkpoint cert, state
// transfer, redial, ...).
type Event struct {
	Seq    uint64    `json:"seq"`  // monotonically increasing per ring
	Time   time.Time `json:"time"` // recording time
	Kind   string    `json:"kind"` // short machine-readable tag, e.g. "view-change"
	Detail string    `json:"detail"`
}

// Trace is a fixed-capacity ring buffer of recent Events. Record overwrites
// the oldest entry once full; Events returns the survivors oldest-first.
// All methods are safe for concurrent use and nil-safe no-ops.
type Trace struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded; buf index = seq % cap
}

// NewTrace returns a ring holding the most recent capacity events
// (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Record appends an event, evicting the oldest once the ring is full. The
// detail string is formatted from args like fmt.Sprintf.
func (t *Trace) Record(kind, format string, args ...any) {
	if t == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	t.mu.Lock()
	t.buf[t.next%uint64(len(t.buf))] = Event{
		Seq:    t.next,
		Time:   time.Now(),
		Kind:   kind,
		Detail: detail,
	}
	t.next++
	t.mu.Unlock()
}

// Events returns the retained events, oldest first. Nil trace returns nil.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	capacity := uint64(len(t.buf))
	start := uint64(0)
	if n > capacity {
		start = n - capacity
	}
	out := make([]Event, 0, n-start)
	for seq := start; seq < n; seq++ {
		out = append(out, t.buf[seq%capacity])
	}
	return out
}

// Len reports how many events the ring currently retains.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next > uint64(len(t.buf)) {
		return len(t.buf)
	}
	return int(t.next)
}
