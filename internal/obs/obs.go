// Package obs is the library's dependency-free observability layer: a
// metrics registry of atomic counters, gauges, and fixed-bucket histograms,
// plus a structured event-trace ring buffer (trace.go) and an HTTP debug
// surface (http.go) serving Prometheus text, expvar-style JSON, recent
// trace events, and pprof.
//
// Design constraints, in order:
//
//   - Zero dependencies and zero cost when absent. Every metric type is
//     nil-safe: calling Add/Set/Observe/Record on a nil *Counter, *Gauge,
//     *Histogram, or *Trace is a no-op, so instrumented code carries no
//     "is monitoring on?" branches — a component built without a Registry
//     simply holds nil metrics.
//   - Hot-path writes are single atomic operations (no locks, no maps).
//     The registry lock is taken only at get-or-create and snapshot time.
//   - Names carry optional Prometheus-style labels inline, rendered by
//     Name: Name("tcpnet_queue_depth", "peer", 3) -> `tcpnet_queue_depth{peer="3"}`.
//     The exporters pass label blocks through, so one registry can hold
//     per-replica or per-peer series without a label abstraction.
//
// Snapshot returns a consistent read for tests and assertions: histogram
// totals are derived from the bucket counts themselves, so Count always
// equals the sum of the buckets even under concurrent writers.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is unusable;
// obtain one from Registry.Counter. All methods are nil-safe no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. All methods are nil-safe no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add increases (or, with negative n, decreases) the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations <= bounds[i]; a final implicit +Inf bucket catches the rest.
// All methods are nil-safe no-ops.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-updated
	clamps *Counter        // negative observations clamped to 0 (registry-created)
}

// Observe records one value. Negative values can only come from clock
// anomalies (an interval measured across a step of a non-monotonic source);
// recording one would permanently corrupt Sum, so they are clamped to 0 and
// counted in the histogram's <base>_clock_clamps_total companion counter.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
		h.clamps.Inc()
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// SizeBuckets suit count-valued distributions (batch sizes, queue depths).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// LatencyBuckets suit second-valued durations from 100µs to 10s.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry is a namespace of metrics and traces. The zero value is unusable;
// use NewRegistry. Get-or-create accessors are safe for concurrent use and
// idempotent: the first caller for a name creates the series, later callers
// share it. A nil *Registry hands out nil metrics, making the whole layer a
// no-op.
//
// A Registry value is a view onto a shared series store: Labeled returns a
// view that stamps extra label pairs onto every series it creates, while
// Snapshot and the HTTP exporters always see the full store. Sharded
// deployments hand each consensus group a Labeled("shard", g) view of one
// registry, so per-group series coexist with the same base names.
type Registry struct {
	store  *metricStore
	labels []any // label pairs stamped onto every series name; nil on the root
}

// metricStore is the series storage every view of a registry shares.
type metricStore struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	traces   map[string]*Trace
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{store: &metricStore{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		traces:   make(map[string]*Trace),
	}}
}

// Labeled returns a view of the registry that stamps the given label pairs
// onto every series it creates (merging into an existing inline label
// block), sharing storage with the parent: the parent's Snapshot and debug
// handlers see the labeled series. Views nest — labels accumulate. A nil
// registry stays nil, with no pairs the same view is returned.
func (r *Registry) Labeled(pairs ...any) *Registry {
	if r == nil || len(pairs) == 0 {
		return r
	}
	labels := append(append([]any(nil), r.labels...), pairs...)
	return &Registry{store: r.store, labels: labels}
}

// name applies the view's labels to a series name.
func (r *Registry) name(name string) string {
	if len(r.labels) == 0 {
		return name
	}
	if strings.HasSuffix(name, "}") {
		// Merge into the existing label block: `x{peer="3"}` + (shard, 1)
		// -> `x{peer="3",shard="1"}`.
		var b strings.Builder
		b.WriteString(name[:len(name)-1])
		b.WriteByte(',')
		writeLabelPairs(&b, r.labels)
		b.WriteByte('}')
		return b.String()
	}
	return Name(name, r.labels...)
}

// Name renders a metric name with label pairs: Name("x", "peer", 3) returns
// `x{peer="3"}`. Pairs alternate label, value; values are formatted with
// fmt.Sprint. With no pairs it returns base unchanged.
func Name(base string, pairs ...any) string {
	if len(pairs) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	writeLabelPairs(&b, pairs)
	b.WriteByte('}')
	return b.String()
}

func writeLabelPairs(b *strings.Builder, pairs []any) {
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%s=%q", pairs[i], fmt.Sprint(pairs[i+1]))
	}
}

// baseOf strips an inline label block: `x{peer="3"}` -> `x`.
func baseOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter returns the named counter, creating it on first use. Nil registry
// returns nil (a no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	name = r.name(name)
	r.store.mu.Lock()
	defer r.store.mu.Unlock()
	c := r.store.counters[name]
	if c == nil {
		c = &Counter{}
		r.store.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	name = r.name(name)
	r.store.mu.Lock()
	defer r.store.mu.Unlock()
	g := r.store.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.store.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (strictly ascending) on first use. Later callers share the
// first creation's buckets; the bounds argument is then ignored.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	name = r.name(name)
	r.store.mu.Lock()
	defer r.store.mu.Unlock()
	h := r.store.hists[name]
	if h == nil {
		b := append([]float64(nil), bounds...)
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		cn := suffixed(name, "_clock_clamps_total")
		if h.clamps = r.store.counters[cn]; h.clamps == nil {
			h.clamps = &Counter{}
			r.store.counters[cn] = h.clamps
		}
		r.store.hists[name] = h
	}
	return h
}

// Trace returns the named trace ring, creating it with the given capacity on
// first use (later capacities are ignored).
func (r *Registry) Trace(name string, capacity int) *Trace {
	if r == nil {
		return nil
	}
	name = r.name(name)
	r.store.mu.Lock()
	defer r.store.mu.Unlock()
	t := r.store.traces[name]
	if t == nil {
		t = NewTrace(capacity)
		r.store.traces[name] = t
	}
	return t
}

// HistogramSnapshot is one histogram's state at snapshot time. Counts[i] is
// the (non-cumulative) number of observations <= Bounds[i]; the final extra
// entry is the +Inf bucket. Count is always the sum of Counts.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot is a point-in-time copy of every metric, for tests and the
// exporters.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric. Histogram totals are derived from the bucket
// counts read at snapshot time, so Count == sum(Counts) holds even while
// writers race the snapshot. Nil registry returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.store.mu.Lock()
	defer r.store.mu.Unlock()
	for name, c := range r.store.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.store.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.store.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Sum:    math.Float64frombits(h.sum.Load()),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
			hs.Count += hs.Counts[i]
		}
		s.Histograms[name] = hs
	}
	return s
}

// Counter returns the exact named counter's value (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// CounterSum sums every counter series of the given base name, with or
// without labels: CounterSum("x") covers `x`, `x{a="1"}`, `x{a="2"}`, ...
func (s Snapshot) CounterSum(base string) uint64 {
	var sum uint64
	for name, v := range s.Counters {
		if baseOf(name) == base {
			sum += v
		}
	}
	return sum
}

// GaugeSum sums every gauge series of the given base name.
func (s Snapshot) GaugeSum(base string) int64 {
	var sum int64
	for name, v := range s.Gauges {
		if baseOf(name) == base {
			sum += v
		}
	}
	return sum
}

// HistogramCount sums the observation counts of every histogram series of
// the given base name.
func (s Snapshot) HistogramCount(base string) uint64 {
	var sum uint64
	for name, h := range s.Histograms {
		if baseOf(name) == base {
			sum += h.Count
		}
	}
	return sum
}

// HistogramQuantile estimates the q-quantile (q in [0, 1]) across every
// histogram series of the given base name, Prometheus-style: the target
// rank is located in the merged cumulative bucket counts and linearly
// interpolated within its bucket. Series are merged by summing per-bucket
// counts (label variants of one base share bucket bounds by construction;
// a series whose bounds differ from the first is skipped). Quantiles that
// land in the +Inf bucket return the largest finite bound — the histogram
// cannot resolve beyond it. ok is false when no series of the base holds
// any observations.
func (s Snapshot) HistogramQuantile(base string, q float64) (v float64, ok bool) {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	var bounds []float64
	var counts []uint64
	for name, h := range s.Histograms {
		if baseOf(name) != base {
			continue
		}
		if bounds == nil {
			bounds = h.Bounds
			counts = append([]uint64(nil), h.Counts...)
			continue
		}
		if len(h.Bounds) != len(bounds) {
			continue
		}
		same := true
		for i := range bounds {
			if h.Bounds[i] != bounds[i] {
				same = false
				break
			}
		}
		if !same {
			continue
		}
		for i := range counts {
			counts[i] += h.Counts[i]
		}
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, false
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: unresolvable past the largest finite bound.
			if len(bounds) == 0 {
				return 0, true
			}
			return bounds[len(bounds)-1], true
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi, true
		}
		frac := (rank - (cum - float64(c))) / float64(c)
		return lo + (hi-lo)*frac, true
	}
	if len(bounds) == 0 {
		return 0, true
	}
	return bounds[len(bounds)-1], true
}
