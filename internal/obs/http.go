package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"

	"unidir/internal/obs/tracing"
)

// WritePrometheus renders the registry in Prometheus text exposition format.
// Metric names created via Name carry their label block through to the
// output; histogram buckets come out cumulative with the usual _bucket/_sum/
// _count series and a trailing +Inf bucket.
func (r *Registry) WritePrometheus(w io.Writer) {
	s := r.Snapshot()

	typed := make(map[string]bool)
	writeType := func(base, kind string) {
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}

	for _, name := range sortedKeys(s.Counters) {
		writeType(baseOf(name), "counter")
		fmt.Fprintf(w, "%s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		writeType(baseOf(name), "gauge")
		fmt.Fprintf(w, "%s %d\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		base := baseOf(name)
		writeType(base, "histogram")
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s %d\n", withLabel(name, "le", formatBound(bound)), cum)
		}
		fmt.Fprintf(w, "%s %d\n", withLabel(name, "le", "+Inf"), h.Count)
		fmt.Fprintf(w, "%s %g\n", suffixed(name, "_sum"), h.Sum)
		fmt.Fprintf(w, "%s %d\n", suffixed(name, "_count"), h.Count)
	}
}

// withLabel inserts one extra label into a (possibly already labelled)
// histogram series name and appends the _bucket suffix to its base:
// `x{peer="3"}` + le=1 -> `x_bucket{peer="3",le="1"}`.
func withLabel(name, label, value string) string {
	base := baseOf(name)
	existing := ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		existing = strings.TrimSuffix(name[i+1:], "}") + ","
	}
	return fmt.Sprintf("%s_bucket{%s%s=%q}", base, existing, label, value)
}

// suffixed appends a suffix to the base name, keeping any label block:
// `x{a="1"}` + _sum -> `x_sum{a="1"}`.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// HandlerOption configures Handler's optional surfaces.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	spans       *tracing.SpanBuffer
	ready       func() bool
	readyDetail func() (bool, string)
	status      []statusSource
}

// statusSource is one shard's worth of status providers; the shard label is
// stamped onto every Status whose own Shard field is empty.
type statusSource struct {
	shard     string
	providers []StatusProvider
}

// WithSpans serves the buffer's completed distributed-tracing spans at
// /debug/spans as a JSON object {"total": N, "spans": [...]} (oldest first;
// total counts spans ever added, including those the ring has evicted).
func WithSpans(buf *tracing.SpanBuffer) HandlerOption {
	return func(c *handlerConfig) { c.spans = buf }
}

// WithReadiness makes /readyz consult ready: 200 while it returns true, 503
// otherwise. Without this option /readyz always reports ready.
func WithReadiness(ready func() bool) HandlerOption {
	return func(c *handlerConfig) { c.ready = ready }
}

// WithReadinessDetail is WithReadiness with a reason: while probe reports
// false, /readyz answers 503 with "not ready: <reason>" so operators can tell
// a view change from a state transfer without grepping logs. Takes precedence
// over WithReadiness when both are given.
func WithReadinessDetail(probe func() (bool, string)) HandlerOption {
	return func(c *handlerConfig) { c.readyDetail = probe }
}

// WithStatus serves the providers' snapshots at /debug/status as a JSON
// object {"replicas": [...]}. The shard label is stamped onto each Status
// that does not already carry one (replicas don't know their shard; the
// process hosting them does). The option accumulates: call it once per shard
// in multi-group processes.
func WithStatus(shard string, providers ...StatusProvider) HandlerOption {
	return func(c *handlerConfig) {
		c.status = append(c.status, statusSource{shard: shard, providers: providers})
	}
}

// Handler returns an http.Handler exposing the registry:
//
//	/metrics       Prometheus text exposition
//	/debug/vars    expvar-style JSON snapshot (counters, gauges, histograms)
//	/debug/trace   JSON map of retained trace events; ?ring=<name> (or the
//	               older ?name=) selects one ring, ?n=<limit> keeps only the
//	               most recent limit events per ring
//	/debug/spans   completed tracing spans (with WithSpans)
//	/debug/status  per-replica protocol status (with WithStatus): JSON
//	               {"replicas": [...]} of obs.Status snapshots
//	/healthz       liveness: always 200 while the process serves
//	/readyz        readiness: 503 until the WithReadiness probe passes;
//	               with WithReadinessDetail the 503 body names the failing
//	               probe ("not ready: <reason>")
//	/debug/pprof/  the standard runtime profiles
//	/              plain-text index of the endpoints above
//
// Unlike the expvar package it does not touch global state, so any number of
// registries can be served by one process.
func Handler(r *Registry, opts ...HandlerOption) http.Handler {
	var cfg handlerConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		q := req.URL.Query()
		want := q.Get("ring")
		if want == "" {
			want = q.Get("name")
		}
		limit := -1
		if v := q.Get("n"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			limit = n
		}
		out := make(map[string][]Event)
		if r != nil {
			r.store.mu.Lock()
			rings := make(map[string]*Trace, len(r.store.traces))
			for name, tr := range r.store.traces {
				rings[name] = tr
			}
			r.store.mu.Unlock()
			for name, tr := range rings {
				if want != "" && name != want {
					continue
				}
				events := tr.Events()
				if limit >= 0 && len(events) > limit {
					events = events[len(events)-limit:]
				}
				out[name] = events
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var body struct {
			Total uint64         `json:"total"`
			Spans []tracing.Span `json:"spans"`
		}
		if cfg.spans != nil {
			body.Total = cfg.spans.Total()
			body.Spans = cfg.spans.Spans()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
	if len(cfg.status) > 0 {
		mux.HandleFunc("/debug/status", func(w http.ResponseWriter, _ *http.Request) {
			var body struct {
				Replicas []Status `json:"replicas"`
			}
			for _, src := range cfg.status {
				for _, p := range src.providers {
					st := p.Status()
					if st.Shard == "" {
						st.Shard = src.shard
					}
					body.Replicas = append(body.Replicas, st)
				}
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(body)
		})
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		switch {
		case cfg.readyDetail != nil:
			if ok, reason := cfg.readyDetail(); !ok {
				if reason == "" {
					reason = "probe failed"
				}
				http.Error(w, "not ready: "+reason, http.StatusServiceUnavailable)
				return
			}
		case cfg.ready != nil && !cfg.ready():
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		endpoints := []string{"/metrics", "/debug/vars", "/debug/trace"}
		if cfg.spans != nil {
			endpoints = append(endpoints, "/debug/spans")
		}
		if len(cfg.status) > 0 {
			endpoints = append(endpoints, "/debug/status")
		}
		endpoints = append(endpoints, "/healthz", "/readyz", "/debug/pprof/")
		for _, e := range endpoints {
			fmt.Fprintln(w, e)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
