package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition format.
// Metric names created via Name carry their label block through to the
// output; histogram buckets come out cumulative with the usual _bucket/_sum/
// _count series and a trailing +Inf bucket.
func (r *Registry) WritePrometheus(w io.Writer) {
	s := r.Snapshot()

	typed := make(map[string]bool)
	writeType := func(base, kind string) {
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}

	for _, name := range sortedKeys(s.Counters) {
		writeType(baseOf(name), "counter")
		fmt.Fprintf(w, "%s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		writeType(baseOf(name), "gauge")
		fmt.Fprintf(w, "%s %d\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		base := baseOf(name)
		writeType(base, "histogram")
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s %d\n", withLabel(name, "le", formatBound(bound)), cum)
		}
		fmt.Fprintf(w, "%s %d\n", withLabel(name, "le", "+Inf"), h.Count)
		fmt.Fprintf(w, "%s %g\n", suffixed(name, "_sum"), h.Sum)
		fmt.Fprintf(w, "%s %d\n", suffixed(name, "_count"), h.Count)
	}
}

// withLabel inserts one extra label into a (possibly already labelled)
// histogram series name and appends the _bucket suffix to its base:
// `x{peer="3"}` + le=1 -> `x_bucket{peer="3",le="1"}`.
func withLabel(name, label, value string) string {
	base := baseOf(name)
	existing := ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		existing = strings.TrimSuffix(name[i+1:], "}") + ","
	}
	return fmt.Sprintf("%s_bucket{%s%s=%q}", base, existing, label, value)
}

// suffixed appends a suffix to the base name, keeping any label block:
// `x{a="1"}` + _sum -> `x_sum{a="1"}`.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Handler returns an http.Handler exposing the registry:
//
//	/metrics       Prometheus text exposition
//	/debug/vars    expvar-style JSON snapshot (counters, gauges, histograms)
//	/debug/trace   JSON array of retained trace events (?name= selects a ring)
//	/debug/pprof/  the standard runtime profiles
//
// Unlike the expvar package it does not touch global state, so any number of
// registries can be served by one process.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		want := req.URL.Query().Get("name")
		out := make(map[string][]Event)
		if r != nil {
			r.mu.Lock()
			names := make([]string, 0, len(r.traces))
			for name := range r.traces {
				names = append(names, name)
			}
			r.mu.Unlock()
			for _, name := range names {
				if want != "" && name != want {
					continue
				}
				out[name] = r.Trace(name, 1).Events()
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
