package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter not idempotent")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every accessor on a nil registry returns a nil metric, and every
	// method on those is a no-op; nothing here may panic.
	r.Counter("c").Inc()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(1)
	r.Histogram("h", SizeBuckets).Observe(2)
	r.Trace("t", 8).Record("kind", "detail %d", 1)
	if got := r.Trace("t", 8).Events(); got != nil {
		t.Fatalf("nil trace events = %v, want nil", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	if c := r.Counter("c").Value(); c != 0 {
		t.Fatalf("nil counter value = %d", c)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	// Upper bounds are inclusive, like Prometheus `le`.
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 9} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	want := []uint64{2, 2, 2, 1} // <=1: {0.5,1}; <=2: {1.5,2}; <=4: {3,4}; +Inf: {9}
	if len(s.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0.5+1+1.5+2+3+4+9 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestSnapshotConsistentUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4, 8})
	c := r.Counter("ops")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			v := float64(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(v)
				c.Inc()
				v += 1.7
				if v > 16 {
					v = 0.3
				}
			}
		}(w)
	}
	// Histogram snapshot totals are derived from the buckets themselves, so
	// Count must equal the bucket sum on every snapshot taken mid-flight.
	for i := 0; i < 200; i++ {
		s := r.Snapshot().Histograms["lat"]
		var sum uint64
		for _, n := range s.Counts {
			sum += n
		}
		if sum != s.Count {
			t.Fatalf("snapshot %d: bucket sum %d != count %d", i, sum, s.Count)
		}
	}
	close(stop)
	wg.Wait()
	final := r.Snapshot()
	if final.Histograms["lat"].Count != final.Counters["ops"] {
		t.Fatalf("quiesced: histogram count %d != counter %d",
			final.Histograms["lat"].Count, final.Counters["ops"])
	}
}

func TestTraceWraparound(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Record("k", "event %d", i)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	// Oldest-first, and only the newest capacity survive.
	for i, ev := range evs {
		wantSeq := uint64(6 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if want := "event " + string(rune('6'+i)); ev.Detail != want {
			t.Fatalf("event %d detail = %q, want %q", i, ev.Detail, want)
		}
	}
}

func TestTracePartialFill(t *testing.T) {
	tr := NewTrace(8)
	tr.Record("a", "one")
	tr.Record("b", "two")
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Detail != "one" || evs[1].Detail != "two" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestName(t *testing.T) {
	if got := Name("x"); got != "x" {
		t.Fatalf("Name bare = %q", got)
	}
	if got := Name("x", "peer", 3); got != `x{peer="3"}` {
		t.Fatalf("Name one label = %q", got)
	}
	if got := Name("x", "a", 1, "b", "z"); got != `x{a="1",b="z"}` {
		t.Fatalf("Name two labels = %q", got)
	}
	if got := baseOf(`x{a="1"}`); got != "x" {
		t.Fatalf("baseOf = %q", got)
	}
}

func TestLabeledView(t *testing.T) {
	root := NewRegistry()
	s0 := root.Labeled("shard", 0)
	s1 := root.Labeled("shard", 1)

	s0.Counter("committed_total").Add(2)
	s1.Counter("committed_total").Add(5)
	snap := root.Snapshot()
	if got := snap.Counter(`committed_total{shard="0"}`); got != 2 {
		t.Fatalf("shard 0 series = %d, want 2", got)
	}
	if got := snap.Counter(`committed_total{shard="1"}`); got != 5 {
		t.Fatalf("shard 1 series = %d, want 5", got)
	}
	if got := snap.CounterSum("committed_total"); got != 7 {
		t.Fatalf("CounterSum across shards = %d, want 7", got)
	}

	// Labels merge into an existing inline block, not nest around it.
	s0.Counter(Name("sent", "peer", 3)).Add(1)
	if got := root.Snapshot().Counter(`sent{peer="3",shard="0"}`); got != 1 {
		t.Fatalf("merged-label series missing: %+v", root.Snapshot().Counters)
	}

	// Histogram clamp companions stay attached to the labeled series.
	s1.Histogram("lat", LatencyBuckets).Observe(-1)
	if got := root.Snapshot().Counter(`lat_clock_clamps_total{shard="1"}`); got != 1 {
		t.Fatalf("labeled clamp counter = %d, want 1", got)
	}

	// Views share storage: the same name through the same view is the same
	// series, and the root still sees the unlabeled name unlabeled.
	if s0.Counter("committed_total") != s0.Counter("committed_total") {
		t.Fatal("labeled view not idempotent")
	}
	root.Counter("committed_total").Add(1)
	if got := root.Snapshot().Counter("committed_total"); got != 1 {
		t.Fatalf("root series = %d, want 1", got)
	}

	// Nested views accumulate labels.
	nested := s0.Labeled("replica", 2)
	nested.Gauge("window").Set(9)
	if got := root.Snapshot().Gauges[`window{shard="0",replica="2"}`]; got != 9 {
		t.Fatalf("nested labels: %+v", root.Snapshot().Gauges)
	}

	// Nil and no-pairs stay cheap and safe.
	var nilr *Registry
	if nilr.Labeled("shard", 0) != nil {
		t.Fatal("nil.Labeled != nil")
	}
	if root.Labeled() != root {
		t.Fatal("Labeled() with no pairs should return the same view")
	}
	nilr.Labeled("shard", 0).Counter("x").Inc() // must not panic
}

func TestSnapshotSumHelpers(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("sent", "peer", 1)).Add(3)
	r.Counter(Name("sent", "peer", 2)).Add(4)
	r.Counter("other").Add(100)
	r.Gauge(Name("depth", "peer", 1)).Set(5)
	r.Gauge(Name("depth", "peer", 2)).Set(6)
	r.Histogram(Name("sz", "r", 0), SizeBuckets).Observe(2)
	r.Histogram(Name("sz", "r", 1), SizeBuckets).Observe(3)
	s := r.Snapshot()
	if got := s.CounterSum("sent"); got != 7 {
		t.Fatalf("CounterSum = %d, want 7", got)
	}
	if got := s.Counter(Name("sent", "peer", 1)); got != 3 {
		t.Fatalf("Counter = %d, want 3", got)
	}
	if got := s.GaugeSum("depth"); got != 11 {
		t.Fatalf("GaugeSum = %d, want 11", got)
	}
	if got := s.HistogramCount("sz"); got != 2 {
		t.Fatalf("HistogramCount = %d, want 2", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("reqs", "peer", 1)).Add(2)
	r.Gauge("depth").Set(-3)
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE reqs counter",
		`reqs{peer="1"} 2`,
		"# TYPE depth gauge",
		"depth -3",
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		"lat_sum 11",
		"lat_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusLabelledHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram(Name("sz", "replica", 0), []float64{4}).Observe(2)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`sz_bucket{replica="0",le="4"} 1`,
		`sz_bucket{replica="0",le="+Inf"} 1`,
		`sz_sum{replica="0"} 2`,
		`sz_count{replica="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(9)
	r.Trace("events", 8).Record("view-change", "view %d", 2)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "hits 9") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, `"hits": 9`) || !json.Valid([]byte(out)) {
		t.Fatalf("/debug/vars missing counter or invalid JSON:\n%s", out)
	}
	if out := get("/debug/trace"); !strings.Contains(out, "view-change") {
		t.Fatalf("/debug/trace missing event:\n%s", out)
	}
	if out := get("/debug/trace?name=absent"); strings.Contains(out, "view-change") {
		t.Fatalf("/debug/trace filter leaked events:\n%s", out)
	}
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("pprof index: %v (resp %+v)", err, resp)
	}
	resp.Body.Close()
}
