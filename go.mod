module unidir

go 1.22
