// Go-native benchmarks, one family per experiment in DESIGN.md's index
// (B1-B4). The printing harness with the same workloads lives in
// cmd/benchharness; these versions integrate with `go test -bench`.
package unidir_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"unidir/internal/harness"
	"unidir/internal/rounds"
	"unidir/internal/sig"
	"unidir/internal/sig/fastverify"
	"unidir/internal/simnet"
	"unidir/internal/smr"
	"unidir/internal/trusted/swmr"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

// --- B1: SRB broadcast cost by substrate, scheme, and n ---

func BenchmarkSRB(b *testing.B) {
	type builder struct {
		name   string
		build  func(types.Membership, sig.Scheme) (*harness.SRBCluster, error)
		f      func(n int) int
		signed bool
	}
	builders := []builder{
		{"trincsrb", harness.BuildTrincClusterScheme, func(n int) int { return (n - 1) / 2 }, true},
		{"a2msrb", harness.BuildA2MClusterScheme, func(n int) int { return (n - 1) / 2 }, true},
		{"uniround", harness.BuildUniroundClusterScheme, func(n int) int { return (n - 1) / 2 }, true},
		{"bracha", func(m types.Membership, _ sig.Scheme) (*harness.SRBCluster, error) {
			return harness.BuildBrachaCluster(m)
		}, func(n int) int { return (n - 1) / 3 }, false},
	}
	for _, bl := range builders {
		// bracha carries no signatures, so the scheme dimension is dropped.
		schemes := []sig.Scheme{sig.HMAC, sig.Ed25519}
		if !bl.signed {
			schemes = schemes[:1]
		}
		for _, scheme := range schemes {
			for _, n := range []int{4, 7, 10} {
				name := fmt.Sprintf("%s/%s/n=%d", bl.name, scheme, n)
				if !bl.signed {
					name = fmt.Sprintf("%s/n=%d", bl.name, n)
				}
				scheme := scheme
				b.Run(name, func(b *testing.B) {
					m := harness.MustMembership(n, bl.f(n))
					c, err := bl.build(m, scheme)
					if err != nil {
						b.Fatal(err)
					}
					defer c.Stop()
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
					defer cancel()
					payload := make([]byte, 128)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := c.Nodes[0].Broadcast(payload); err != nil {
							b.Fatal(err)
						}
						// One full broadcast = delivered by every node.
						for _, node := range c.Nodes {
							if _, err := node.Deliver(ctx); err != nil {
								b.Fatal(err)
							}
						}
					}
				})
			}
		}
	}
}

// --- B2: SMR commit cost, MinBFT vs PBFT ---

func BenchmarkSMR(b *testing.B) {
	builders := []struct {
		name  string
		build func(harness.SMRConfig) (*harness.SMRCluster, error)
	}{
		{"minbft", harness.BuildMinBFTCfg},
		{"pbft", harness.BuildPBFTCfg},
	}
	// Closed-loop: one request outstanding per round trip (batching is
	// irrelevant at this offered load; pinned to batch=1 for stability).
	for _, p := range builders {
		for _, scheme := range []sig.Scheme{sig.HMAC, sig.Ed25519} {
			for _, f := range []int{1, 2} {
				scheme := scheme
				p := p
				b.Run(fmt.Sprintf("%s/%s/f=%d", p.name, scheme, f), func(b *testing.B) {
					c, err := p.build(harness.SMRConfig{F: f, Scheme: scheme, Batch: 1})
					if err != nil {
						b.Fatal(err)
					}
					defer c.Stop()
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
					defer cancel()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := c.KV.Put(ctx, fmt.Sprintf("key-%d", i%64), []byte("value")); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
	// Pipelined: a 32-deep window offers equal load to an unbatched
	// (batch=1) and a batched (batch=64) primary — the A/B that isolates
	// what consensus batching buys.
	const window = 32
	for _, p := range builders {
		for _, batch := range []int{1, 64} {
			p := p
			batch := batch
			b.Run(fmt.Sprintf("%s/pipelined/hmac/f=1/batch=%d", p.name, batch), func(b *testing.B) {
				c, err := p.build(harness.SMRConfig{F: 1, Scheme: sig.HMAC, Batch: batch, Window: window})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Stop()
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
				defer cancel()
				calls := make([]*smr.Call, 0, b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					call, err := c.Pipe.PutAsync(ctx, fmt.Sprintf("key-%d", i%64), []byte("value"))
					if err != nil {
						b.Fatal(err)
					}
					calls = append(calls, call)
				}
				for _, call := range calls {
					if _, err := call.Result(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSMRTrace is the tracing-overhead A/B: the same pipelined MinBFT
// workload with tracing off, at the production default rate (1-in-64), and
// fully sampled. The acceptance bar for the tracing layer is <2% throughput
// regression at rate=64 versus rate=0.
func BenchmarkSMRTrace(b *testing.B) {
	for _, rate := range []int{0, 64, 1} {
		rate := rate
		b.Run(fmt.Sprintf("minbft/pipelined/rate=%d", rate), func(b *testing.B) {
			c, err := harness.BuildMinBFTCfg(harness.SMRConfig{
				F: 1, Scheme: sig.HMAC, Batch: 64, Window: 32, TraceRate: rate,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Stop()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			calls := make([]*smr.Call, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				call, err := c.Pipe.PutAsync(ctx, fmt.Sprintf("key-%d", i%64), []byte("value"))
				if err != nil {
					b.Fatal(err)
				}
				calls = append(calls, call)
			}
			for _, call := range calls {
				if _, err := call.Result(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B5: signature fast path — single vs batch vs cached ---

// BenchmarkSigVerify isolates the fastverify layer itself: raw per-call
// verification against the keyring, the batch path with caching disabled
// (fan-out and bookkeeping overhead alone), and steady-state cache hits.
// Batch op time covers batchSize signatures — divide by batchSize to
// compare against single.
func BenchmarkSigVerify(b *testing.B) {
	const batchSize = 32
	m := harness.MustMembership(8, 2)
	for _, scheme := range []sig.Scheme{sig.Ed25519, sig.HMAC} {
		rings, err := sig.NewKeyrings(m, scheme, rand.New(rand.NewSource(7)))
		if err != nil {
			b.Fatal(err)
		}
		items := make([]fastverify.Item, batchSize)
		for i := range items {
			from := types.ProcessID(i % m.N)
			msg := make([]byte, 128)
			msg[0] = byte(i)
			items[i] = fastverify.Item{From: from, Msg: msg, Sig: rings[int(from)].Sign(msg)}
		}
		b.Run("single/"+scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				it := items[i%batchSize]
				if err := rings[0].Verify(it.From, it.Msg, it.Sig); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("batch/"+scheme.String(), func(b *testing.B) {
			v := fastverify.New(rings[0], fastverify.WithCacheSize(0), fastverify.WithNegativeCacheSize(0))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := v.VerifyAll(items); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(batchSize, "sigs/op")
		})
		b.Run("cached/"+scheme.String(), func(b *testing.B) {
			v := fastverify.New(rings[0])
			if err := v.VerifyAll(items); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it := items[i%batchSize]
				if err := v.Verify(it.From, it.Msg, it.Sig); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B3: trusted hardware and signature microbenchmarks ---

func BenchmarkTrusted(b *testing.B) {
	m := harness.MustMembership(4, 1)
	msg := make([]byte, 128)

	for _, scheme := range []sig.Scheme{sig.Ed25519, sig.HMAC} {
		rings, err := sig.NewKeyrings(m, scheme, rand.New(rand.NewSource(1)))
		if err != nil {
			b.Fatal(err)
		}
		b.Run("sign/"+scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rings[0].Sign(msg)
			}
		})
		s := rings[0].Sign(msg)
		b.Run("verify/"+scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := rings[1].Verify(0, msg, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	b.Run("trinc/attest", func(b *testing.B) {
		tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(2)))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tu.Devices[0].Attest(0, types.SeqNum(i+1), msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trinc/check", func(b *testing.B) {
		tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(3)))
		if err != nil {
			b.Fatal(err)
		}
		att, err := tu.Devices[0].Attest(0, 1, msg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tu.Verifier.CheckMessage(att, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("swmr/write", func(b *testing.B) {
		store, err := swmr.NewStore(m)
		if err != nil {
			b.Fatal(err)
		}
		mem := swmr.NewLocal(store, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := mem.Write(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("swmr/read", func(b *testing.B) {
		store, err := swmr.NewStore(m)
		if err != nil {
			b.Fatal(err)
		}
		mem := swmr.NewLocal(store, 0)
		if err := mem.Write(msg); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := mem.Read(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- B4: one full round per system ---

func BenchmarkRounds(b *testing.B) {
	m := harness.MustMembership(5, 2)
	run := func(b *testing.B, systems []rounds.System) {
		b.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := types.Round(i + 1)
			errCh := make(chan error, len(systems))
			for j, sys := range systems {
				go func(j int, sys rounds.System) {
					if err := sys.Send(r, []byte{byte(j)}); err != nil {
						errCh <- err
						return
					}
					_, err := sys.WaitEnd(ctx, r)
					errCh <- err
				}(j, sys)
			}
			for range systems {
				if err := <-errCh; err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	b.Run("swmr", func(b *testing.B) {
		store, err := swmr.NewStore(m)
		if err != nil {
			b.Fatal(err)
		}
		systems := make([]rounds.System, m.N)
		for i := 0; i < m.N; i++ {
			systems[i], err = rounds.NewSWMR(swmr.NewLocal(store, types.ProcessID(i)), m)
			if err != nil {
				b.Fatal(err)
			}
		}
		defer closeAll(systems)
		run(b, systems)
	})
	b.Run("async", func(b *testing.B) {
		net, err := simnet.New(m)
		if err != nil {
			b.Fatal(err)
		}
		defer net.Close()
		systems := make([]rounds.System, m.N)
		for i := 0; i < m.N; i++ {
			systems[i], err = rounds.NewAsync(net.Endpoint(types.ProcessID(i)), m)
			if err != nil {
				b.Fatal(err)
			}
		}
		defer closeAll(systems)
		run(b, systems)
	})
	b.Run("lockstep", func(b *testing.B) {
		net, err := simnet.New(m)
		if err != nil {
			b.Fatal(err)
		}
		defer net.Close()
		systems := make([]rounds.System, m.N)
		for i := 0; i < m.N; i++ {
			systems[i], err = rounds.NewLockstep(net.Endpoint(types.ProcessID(i)), m)
			if err != nil {
				b.Fatal(err)
			}
		}
		defer closeAll(systems)
		run(b, systems)
	})
}

func closeAll(systems []rounds.System) {
	for _, s := range systems {
		_ = s.Close()
	}
}
