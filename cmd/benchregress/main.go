// Command benchregress compares two benchharness -json files and fails when
// throughput regressed. It is the gate behind `make bench-regress`: the
// baseline is the newest checked-in BENCH_*.json, the current file is a
// fresh run, and any row whose ops_per_sec dropped more than -threshold
// (default 20%) against the matching baseline row fails the build.
//
// B10 and B11 lease-mode rows are additionally gated on the read fast
// path: a reads_per_sec drop past -threshold or a read_p99_us rise past
// -read-p99-threshold (default 1.0: fail beyond 2x baseline) fails. The
// B10 consensus-mode rows are reported but not gated at all — they measure
// a deliberately saturated baseline whose collapse point is noisy across
// runs, and the gate exists to protect the fast path. B11's sharded rows
// (write scaling per shard count, lease-through-router) are gated like any
// other throughput row, keyed additionally by shard count.
//
// Rows are matched by their full configuration key — experiment, impl, n,
// f, shards, batch, window, and (for B9) mode and offered rate. Rows present in
// only one file are reported but do not fail: experiments come and go
// across PRs, and a missing row is a coverage question, not a regression.
// With no baseline (first run in a fresh checkout) the tool prints a notice
// and exits zero so the target degrades gracefully.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"unidir/internal/obs"
)

// row mirrors the benchharness benchRow fields that form the key plus the
// measurement under comparison.
type row struct {
	Exp           string  `json:"exp"`
	Impl          string  `json:"impl"`
	N             int     `json:"n"`
	F             int     `json:"f"`
	Phases        int     `json:"phases,omitempty"`
	Shards        int     `json:"shards,omitempty"`
	Batch         int     `json:"batch,omitempty"`
	Window        int     `json:"window,omitempty"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	Mode          string  `json:"mode,omitempty"`
	OfferedPerSec float64 `json:"offered_per_sec,omitempty"`
	ReadRatio     float64 `json:"read_ratio,omitempty"`
	ReadsPerSec   float64 `json:"reads_per_sec,omitempty"`
	ReadP99US     float64 `json:"read_p99_us,omitempty"`
}

func (r row) key() string {
	return fmt.Sprintf("%s|%s|n=%d|f=%d|s=%d|ph=%d|b=%d|w=%d|%s|%.0f|r=%.2f",
		r.Exp, r.Impl, r.N, r.F, r.Shards, r.Phases, r.Batch, r.Window, r.Mode, r.OfferedPerSec, r.ReadRatio)
}

// gateReads reports whether a row's read columns are regression-gated: only
// the B10 lease-mode rows (see the package comment).
func (r row) gateReads() bool {
	return r.Mode == "lease" && r.ReadsPerSec > 0
}

func load(path string) (map[string]row, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(b, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]row, len(rows))
	for _, r := range rows {
		m[r.key()] = r
	}
	return m, nil
}

// newestBaseline picks the lexically greatest BENCH_*.json in dir — the
// files are numbered per PR, so lexical order tracks recency well enough
// (and tie-breaking by name is deterministic).
func newestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", nil
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

func main() {
	baseline := flag.String("baseline", "", "baseline benchharness -json file (default: newest BENCH_*.json in -dir)")
	current := flag.String("current", "", "fresh benchharness -json file to check (required)")
	dir := flag.String("dir", ".", "directory searched for BENCH_*.json when -baseline is unset")
	threshold := flag.Float64("threshold", 0.20, "fail when ops_per_sec (or lease-mode reads_per_sec) drops more than this fraction below baseline")
	readP99 := flag.Float64("read-p99-threshold", 1.0, "fail when a lease-mode row's read_p99_us rises more than this fraction above baseline")
	flag.Parse()

	fmt.Fprintln(os.Stderr, obs.BuildInfoLine("benchregress"))
	if err := run(*baseline, *current, *dir, *threshold, *readP99); err != nil {
		fmt.Fprintln(os.Stderr, "benchregress:", err)
		os.Exit(1)
	}
}

func run(baseline, current, dir string, threshold, readP99Threshold float64) error {
	if current == "" {
		return fmt.Errorf("-current is required")
	}
	if baseline == "" {
		found, err := newestBaseline(dir)
		if err != nil {
			return err
		}
		if found == "" {
			fmt.Printf("benchregress: no BENCH_*.json baseline in %s; nothing to compare (ok)\n", dir)
			return nil
		}
		baseline = found
	}
	base, err := load(baseline)
	if err != nil {
		return err
	}
	cur, err := load(current)
	if err != nil {
		return err
	}
	fmt.Printf("benchregress: %s (current) vs %s (baseline), threshold %.0f%%\n",
		current, baseline, threshold*100)

	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var failed, compared, skipped int
	for _, k := range keys {
		b := base[k]
		c, ok := cur[k]
		if !ok {
			skipped++
			fmt.Printf("  skip (not in current): %s\n", k)
			continue
		}
		if b.OpsPerSec <= 0 {
			skipped++
			continue
		}
		compared++
		// B10 consensus rows run the ordering path past saturation on
		// purpose; where it collapses varies too much run-to-run to gate.
		gated := !(b.Exp == "b10" && b.Mode == "consensus")
		delta := (c.OpsPerSec - b.OpsPerSec) / b.OpsPerSec
		status := "ok"
		if !gated {
			status = "ungated"
		} else if delta < -threshold {
			status = "REGRESSED"
			failed++
		}
		fmt.Printf("  %-9s %-60s %10.0f -> %10.0f  (%+.1f%%)\n",
			status, k, b.OpsPerSec, c.OpsPerSec, delta*100)
		if !b.gateReads() {
			continue
		}
		rdelta := (c.ReadsPerSec - b.ReadsPerSec) / b.ReadsPerSec
		status = "ok"
		if rdelta < -threshold {
			status = "REGRESSED"
			failed++
		}
		fmt.Printf("  %-9s %-60s %10.0f -> %10.0f  (%+.1f%%) reads/s\n",
			status, k, b.ReadsPerSec, c.ReadsPerSec, rdelta*100)
		if b.ReadP99US > 0 {
			pdelta := (c.ReadP99US - b.ReadP99US) / b.ReadP99US
			status = "ok"
			if pdelta > readP99Threshold {
				status = "REGRESSED"
				failed++
			}
			fmt.Printf("  %-9s %-60s %10.0f -> %10.0f  (%+.1f%%) read p99 (µs)\n",
				status, k, b.ReadP99US, c.ReadP99US, pdelta*100)
		}
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			fmt.Printf("  new (not in baseline): %s\n", k)
		}
	}
	fmt.Printf("benchregress: %d compared, %d skipped, %d regressed\n", compared, skipped, failed)
	if failed > 0 {
		return fmt.Errorf("%d row(s) regressed more than %.0f%%", failed, threshold*100)
	}
	return nil
}
