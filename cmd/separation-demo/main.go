// Command separation-demo runs the paper's §4.1 separation experiment (E1
// in DESIGN.md) at a configurable scale and prints the outcome of the three
// scenarios plus the SWMR control arm.
//
// Usage:
//
//	separation-demo [-n 5] [-f 2] [-timeout 10s] [-control 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"unidir/internal/obs"
	"unidir/internal/separation"
	"unidir/internal/types"
)

func main() {
	n := flag.Int("n", 5, "number of processes (must satisfy n > 2f)")
	f := flag.Int("f", 2, "failure threshold (must be > 1 for the impossibility regime)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-scenario liveness timeout")
	control := flag.Int("control", 5, "randomized schedules for the SWMR control arm")
	flag.Parse()

	fmt.Fprintln(os.Stderr, obs.BuildInfoLine("separation-demo"))
	if err := run(*n, *f, *timeout, *control); err != nil {
		fmt.Fprintln(os.Stderr, "separation-demo:", err)
		os.Exit(1)
	}
}

func run(n, f int, timeout time.Duration, control int) error {
	m, err := types.NewMembership(n, f)
	if err != nil {
		return err
	}
	res, err := separation.Run(m, timeout, control)
	if err != nil {
		return err
	}
	fmt.Printf("separation experiment: n=%d f=%d\n", n, f)
	fmt.Printf("  Q=%v  C1=%v  C2=%v\n", res.Geometry.Q, res.Geometry.C1, res.Geometry.C2)
	for i, out := range []separation.ScenarioOutcome{res.Scenario1, res.Scenario2, res.Scenario3} {
		done := make([]types.ProcessID, 0, len(out.Completed))
		for id, ok := range out.Completed {
			if ok {
				done = append(done, id)
			}
		}
		sort.Slice(done, func(a, b int) bool { return done[a] < done[b] })
		fmt.Printf("scenario %d: completed=%v violations=%d\n", i+1, done, len(out.Violations))
		for _, v := range out.Violations {
			fmt.Printf("  %v\n", v)
		}
	}
	fmt.Printf("SWMR control: %d schedules, %d violations\n", res.SWMRSchedules, len(res.SWMRViolations))
	if len(res.Scenario3.Violations) > 0 && len(res.SWMRViolations) == 0 {
		fmt.Println("result: separation reproduced (SRB cannot implement unidirectionality; SWMR can)")
		return nil
	}
	return fmt.Errorf("unexpected outcome: scenario3=%d violations, control=%d",
		len(res.Scenario3.Violations), len(res.SWMRViolations))
}
