package main

// B11: sharded multi-group SMR. Two questions, two workloads:
//
//   1. Write scaling — does aggregate write throughput scale with shard
//      count? Each point runs N independent MinBFT groups behind the shard
//      router with a per-link delay on every group's network. The delay
//      puts a single group in the latency-bound regime (its throughput is
//      window/RTT, far below one core's execution ceiling), which is the
//      regime sharding is for: on this single-core CI box a zero-delay
//      group is CPU-bound and adding groups could only reshuffle the same
//      core. Real deployments are in the latency-bound regime by default —
//      see EXPERIMENTS.md B11.
//   2. Router overhead on the read fast path — a read-only leased workload
//      through the sharded client at zero delay, sized like B10's lease
//      point (same per-client windows, same total client count), so its
//      aggregate reads/s is directly comparable to the PR 7 single-group
//      lease row.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"unidir/internal/cluster"
	"unidir/internal/harness"
	"unidir/internal/sig"
	"unidir/internal/smr"
)

const (
	b11Batch = 64
	// b11WriteWindow in-flight writes per group under b11LinkDelay of
	// one-way link latency: each group tops out near window/RTT, well under
	// the execution ceiling, so added groups add real capacity.
	b11WriteWindow = 64
	b11LinkDelay   = 2 * time.Millisecond
	// The batch deadline matches the link delay: a deadline far below the
	// RTT cuts each window refill burst into slivers (the 100µs value B9/B10
	// use is tuned for their zero-delay fabric), and with the primary's
	// bounded proposal pipeline, sliver batches cap throughput well under
	// window/RTT.
	b11Deadline = b11LinkDelay
	// The read point mirrors B10's lease configuration so the rows compare:
	// 4 pipelined clients in total (B10: 4 on one group; here: one per
	// group on 4 groups — same client-side receive capacity).
	b11ReadShards = 4
	b11ReadWindow = 256
	b11KeysPer    = 64 // pre-populated keys per group
)

var b11WriteShards = []int{1, 2, 4}

func expB11(ops int, rep *report) error {
	fmt.Println("B11: sharded multi-group SMR — write scaling and router overhead (minbft, f=1 per group)")
	fmt.Printf("  %-14s %6s %8s %10s %10s %10s\n",
		"point", "shards", "ops", "ops/s", "p50", "p99")

	var baseline float64
	for _, shards := range b11WriteShards {
		perGroup := b11WriteOps(ops)
		sc, err := harness.BuildSharded(cluster.MinBFT, harness.ShardedConfig{
			Shards:    shards,
			LinkDelay: b11LinkDelay,
			SMR: harness.SMRConfig{
				F: 1, Scheme: sig.HMAC,
				Batch: b11Batch, Window: b11WriteWindow,
				BatchDeadline: b11Deadline,
			},
		})
		if err != nil {
			return err
		}
		lats, sheds, elapsed, err := b11Drive(sc, perGroup, false)
		sc.Stop()
		if err != nil {
			return fmt.Errorf("write point shards=%d: %w", shards, err)
		}
		total := shards * perGroup
		opsPerSec := float64(len(lats)) / elapsed.Seconds()
		p50, p99 := percentileUS(lats, 0.50), percentileUS(lats, 0.99)
		scale := ""
		if shards == 1 {
			baseline = opsPerSec
		} else if baseline > 0 {
			scale = fmt.Sprintf("  (%.2fx 1-shard)", opsPerSec/baseline)
		}
		fmt.Printf("  %-14s %6d %8d %10.0f %9.0fµs %9.0fµs%s\n",
			"write-scaling", shards, total, opsPerSec, p50, p99, scale)
		rep.add(benchRow{
			Exp: "b11", Impl: "minbft", N: 3, F: 1, Shards: shards,
			Batch: b11Batch, Window: b11WriteWindow, Ops: total,
			Seconds:       elapsed.Seconds(),
			OpsPerSec:     opsPerSec,
			MeanLatencyUS: meanUS(lats),
			P50LatencyUS:  p50,
			P99LatencyUS:  p99,
			Mode:          "write",
			Sheds:         sheds,
		})
	}

	// Router-overhead point: leased reads through the sharded client.
	perGroup := b11ReadOps(ops)
	sc, err := harness.BuildSharded(cluster.MinBFT, harness.ShardedConfig{
		Shards: b11ReadShards,
		SMR: harness.SMRConfig{
			F: 1, Scheme: sig.HMAC,
			Batch: b11Batch, Window: b11ReadWindow,
			BatchDeadline: b11Deadline,
			ReadWindow:    b11ReadWindow,
		},
	})
	if err != nil {
		return err
	}
	lats, sheds, elapsed, err := b11Drive(sc, perGroup, true)
	sc.Stop()
	if err != nil {
		return fmt.Errorf("lease point: %w", err)
	}
	readsPerSec := float64(len(lats)) / elapsed.Seconds()
	p50, p99 := percentileUS(lats, 0.50), percentileUS(lats, 0.99)
	fmt.Printf("  %-14s %6d %8d %10.0f %9.0fµs %9.0fµs  (compare B10 lease, read-only)\n",
		"lease-router", b11ReadShards, b11ReadShards*perGroup, readsPerSec, p50, p99)
	rep.add(benchRow{
		Exp: "b11", Impl: "minbft", N: 3, F: 1, Shards: b11ReadShards,
		Batch: b11Batch, Window: b11ReadWindow, Ops: b11ReadShards * perGroup,
		Seconds:      elapsed.Seconds(),
		OpsPerSec:    readsPerSec,
		P50LatencyUS: p50,
		P99LatencyUS: p99,
		Mode:         "lease",
		Sheds:        sheds,
		ReadRatio:    1,
		ReadsPerSec:  readsPerSec,
		ReadP50US:    p50,
		ReadP99US:    p99,
	})
	return nil
}

// b11WriteOps sizes one write point per group: under b11LinkDelay a group
// moves roughly window/RTT ≈ 16k ops/s, so this keeps each point in the
// steady state for a second or two without dominating the bench run.
func b11WriteOps(ops int) int {
	if n := 4 * ops; n > 8000 {
		return n
	}
	return 8000
}

// b11ReadOps sizes the read point per group: the leased path moves ~50k
// reads/s per client, so a point spans around a second.
func b11ReadOps(ops int) int {
	if n := 16 * ops; n > 50000 {
		return n
	}
	return 50000
}

// b11Drive pre-populates b11KeysPer keys per group, then fans out one
// goroutine per group driving perGroup async operations through the sharded
// client — leased reads when read is true, writes otherwise — each
// goroutine awaiting completions through a bounded FIFO ring (the b10
// idiom: a per-op awaiter goroutine would measure the harness, not the
// path). Returns the merged per-op latencies, the shed count, and the
// fan-out wall time.
func b11Drive(sc *harness.ShardedCluster, perGroup int, read bool) ([]time.Duration, int, time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	shards := sc.Client.Groups()

	// Per-group key sets: sequential names hash where they hash, so scan
	// until every group owns b11KeysPer keys.
	keys := make([][]string, shards)
	filled := 0
	for i := 0; filled < shards; i++ {
		if i > 1<<22 {
			return nil, 0, 0, fmt.Errorf("could not assemble %d keys per group for %d groups", b11KeysPer, shards)
		}
		key := fmt.Sprintf("key-%d", i)
		g := sc.Client.Group(key)
		if len(keys[g]) < b11KeysPer {
			if keys[g] = append(keys[g], key); len(keys[g]) == b11KeysPer {
				filled++
			}
		}
	}
	for g := 0; g < shards; g++ {
		for _, key := range keys[g] {
			if err := sc.Client.Put(ctx, key, []byte("value")); err != nil {
				return nil, 0, 0, err
			}
		}
	}
	if read {
		// Give each group's primary a beat to establish its first lease.
		time.Sleep(50 * time.Millisecond)
	}

	type groupRes struct {
		lats  []time.Duration // slot i: op i's latency; 0 = shed or errored
		sheds atomic.Int64
		err   atomic.Value
	}
	perRes := make([]groupRes, shards)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < shards; g++ {
		wg.Add(1)
		gr := &perRes[g]
		gr.lats = make([]time.Duration, perGroup)
		go func(g int, gr *groupRes) {
			defer wg.Done()
			type pend struct {
				i      int
				t0     time.Time
				result func() ([]byte, error)
			}
			// The ring is exactly as deep as the pipeline window: the
			// awaited op is the one whose completion freed the submit slot
			// we just took, so submit→await tracks submit→complete and the
			// recorded latency is honest. A deeper ring would let long-done
			// ops sit unawaited and report ring residency, not path latency.
			awaitDepth := b11WriteWindow
			if read {
				awaitDepth = b11ReadWindow
			}
			ring := make([]pend, awaitDepth)
			var submitted int
			await := func(pd pend) {
				if _, err := pd.result(); err != nil {
					// Sheds are part of the workload, not a failure: a
					// replica under pressure replies with the typed
					// retryable ErrOverloaded. Count it and move on, like
					// B9 does. (With simnet's order-preserving delayed
					// links the closed-loop writer stays inside every
					// admission bound, so this stays at or near zero.)
					if errors.Is(err, smr.ErrOverloaded) {
						gr.sheds.Add(1)
					} else {
						gr.err.CompareAndSwap(nil, err)
					}
					return
				}
				gr.lats[pd.i] = time.Since(pd.t0)
			}
			defer func() {
				tail := submitted - awaitDepth
				if tail < 0 {
					tail = 0
				}
				for j := tail; j < submitted; j++ {
					await(ring[j%awaitDepth])
				}
			}()
			for i := 0; i < perGroup; i++ {
				key := keys[g][i%b11KeysPer]
				t0 := time.Now()
				var (
					result func() ([]byte, error)
					err    error
				)
				if read {
					var call *smr.ReadCall
					if call, err = sc.Client.RGetAsync(ctx, key); err == nil {
						result = call.Result
					}
				} else {
					var call *smr.Call
					if call, err = sc.Client.PutAsync(ctx, key, []byte("value")); err == nil {
						result = call.Result
					}
				}
				if err != nil {
					if errors.Is(err, smr.ErrOverloaded) {
						gr.sheds.Add(1)
						continue
					}
					gr.err.CompareAndSwap(nil, err)
					return
				}
				if submitted >= awaitDepth {
					await(ring[submitted%awaitDepth])
				}
				ring[submitted%awaitDepth] = pend{i, t0, result}
				submitted++
			}
		}(g, gr)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []time.Duration
	var sheds int
	for g := range perRes {
		gr := &perRes[g]
		if err, ok := gr.err.Load().(error); ok {
			return nil, 0, 0, err
		}
		sheds += int(gr.sheds.Load())
		for _, lat := range gr.lats {
			if lat != 0 {
				lats = append(lats, lat)
			}
		}
	}
	return lats, sheds, elapsed, nil
}
