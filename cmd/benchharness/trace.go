package main

// B8: per-phase latency attribution via distributed tracing. Every request
// is head-sampled (rate 1), the harness merges the per-node span buffers and
// aligns clocks, and the breakdown attributes each request's client-observed
// latency to the span taxonomy (batch-wait, propose, commit-quorum, execute,
// reply, other). -trace-out dumps the merged spans and per-request
// breakdowns as JSON for offline analysis.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"unidir/internal/harness"
	"unidir/internal/obs/tracing"
	"unidir/internal/sig"
)

// traceDump is the -trace-out file shape: one entry per configuration.
type traceDump struct {
	Config     string                     `json:"config"`
	Ops        int                        `json:"ops"`
	Summary    tracing.Summary            `json:"summary"`
	Breakdowns []tracing.RequestBreakdown `json:"breakdowns"`
	Spans      []tracing.Span             `json:"spans"`
}

func expB8(ops int, traceOut string) error {
	type config struct {
		name      string
		cfg       harness.SMRConfig
		pipelined bool
	}
	configs := []config{
		// Window 1 makes the pipelined client (the tracing ingress)
		// closed-loop: one request in flight, batches of one.
		{"unbatched", harness.SMRConfig{F: 1, Scheme: sig.HMAC, Batch: 1, Window: 1, TraceRate: 1}, false},
		{"batched+pipelined", harness.SMRConfig{F: 1, Scheme: sig.HMAC, Batch: 64, Window: 32, TraceRate: 1}, true},
	}

	fmt.Println("B8: per-phase latency attribution (minbft, f=1, every request traced)")
	fmt.Printf("  %-18s %8s %10s | %10s %10s %10s %10s %10s %10s | %10s\n",
		"config", "requests", "total", "batch-wait", "propose", "commit-q", "execute", "reply", "other", "ui-attest")

	var dumps []traceDump
	for _, c := range configs {
		cl, err := harness.BuildMinBFTCfg(c.cfg)
		if err != nil {
			return err
		}
		var runErr error
		if c.pipelined {
			_, _, runErr = timeKVOpsPipelined(cl.Pipe, ops)
		} else {
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			for i := 0; i < ops && runErr == nil; i++ {
				runErr = cl.Pipe.Put(ctx, fmt.Sprintf("key%d", i%16), []byte("value"))
			}
			cancel()
		}
		spans := cl.CollectSpans()
		cl.Stop()
		if runErr != nil {
			return fmt.Errorf("%s: %w", c.name, runErr)
		}
		bds := tracing.Breakdown(spans)
		sum := tracing.Summarize(bds)

		phase := func(name string) time.Duration {
			for _, p := range sum.Phases {
				if p.Name == name {
					return p.Dur
				}
			}
			return 0
		}
		us := func(d time.Duration) string { return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1e3) }
		fmt.Printf("  %-18s %8d %10s | %10s %10s %10s %10s %10s %10s | %10s\n",
			c.name, sum.Requests, us(sum.Total),
			us(phase("batch-wait")), us(phase("propose")), us(phase("commit-quorum")),
			us(phase("execute")), us(phase("reply")), us(phase("other")), us(sum.Attest))
		dumps = append(dumps, traceDump{Config: c.name, Ops: ops, Summary: sum, Breakdowns: bds, Spans: spans})
	}

	if traceOut != "" {
		b, err := json.MarshalIndent(dumps, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(traceOut, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", traceOut, err)
		}
		fmt.Printf("  wrote merged spans + breakdowns to %s\n", traceOut)
	}
	return nil
}
