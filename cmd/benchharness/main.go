// Command benchharness regenerates every experiment in DESIGN.md's
// per-experiment index:
//
//	F1  the implication matrix of the paper's Figure 1, live-checked
//	E1  the §4.1 separation experiment (three scenarios + SWMR control)
//	B1  SRB broadcast cost by substrate (trincsrb / uniround / bracha) and n
//	B2  BFT SMR: MinBFT (n=2f+1) vs PBFT (n=3f+1)
//	B3  trusted hardware and signature microbenchmarks
//	B4  round-system ablation (swmr / async / lockstep)
//
// Usage:
//
//	benchharness -exp all            # everything (default)
//	benchharness -exp b2 -ops 2000   # one experiment, tuned workload
//
// The Go-native testing.B versions of B1-B4 live in bench_test.go at the
// repository root (go test -bench=.).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	exp := flag.String("exp", "all", "experiment: f1, e1, b1, b2, b3, b4, or all")
	msgs := flag.Int("msgs", 200, "broadcasts per configuration (B1)")
	ops := flag.Int("ops", 500, "client operations per configuration (B2)")
	iters := flag.Int("iters", 5000, "iterations per microbenchmark (B3)")
	roundsN := flag.Int("rounds", 500, "rounds per system (B4)")
	flag.Parse()

	if err := run(strings.ToLower(*exp), *msgs, *ops, *iters, *roundsN); err != nil {
		fmt.Fprintln(os.Stderr, "benchharness:", err)
		os.Exit(1)
	}
}

func run(exp string, msgs, ops, iters, roundsN int) error {
	type experiment struct {
		id  string
		fn  func() error
		sep bool
	}
	all := []experiment{
		{"f1", expF1, true},
		{"e1", expE1, true},
		{"b1", func() error { return expB1(msgs) }, true},
		{"b2", func() error { return expB2(ops) }, true},
		{"b3", func() error { return expB3(iters) }, true},
		{"b4", func() error { return expB4(roundsN) }, false},
	}
	ran := false
	for _, e := range all {
		if exp != "all" && exp != e.id {
			continue
		}
		ran = true
		if err := e.fn(); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		if e.sep && exp == "all" {
			fmt.Println()
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
