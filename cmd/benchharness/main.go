// Command benchharness regenerates every experiment in DESIGN.md's
// per-experiment index:
//
//	F1  the implication matrix of the paper's Figure 1, live-checked
//	E1  the §4.1 separation experiment (three scenarios + SWMR control)
//	B1  SRB broadcast cost by substrate (trincsrb / uniround / bracha) and n
//	B2  BFT SMR: MinBFT (n=2f+1) vs PBFT (n=3f+1)
//	B3  trusted hardware and signature microbenchmarks
//	B4  round-system ablation (swmr / async / lockstep)
//	B8  per-phase latency attribution via distributed tracing
//	B9  latency/throughput frontier: adaptive batching + admission control
//	    + backpressure vs the fixed baseline, across an offered-load sweep
//	B10 read fast path: leased linearizable reads vs consensus-path reads
//	    over a mixed workload (-read-ratio; default sweeps 90% and 100%)
//	B11 sharded multi-group SMR: aggregate write throughput across 1/2/4
//	    shards in a latency-bound regime, plus router overhead on the
//	    leased-read path
//	B12 introspection overhead: B11's 2-shard write point with and without
//	    the watch safety auditor polling every replica at 1s
//
// Usage:
//
//	benchharness -exp all                      # everything (default)
//	benchharness -exp b2 -ops 2000             # one experiment, tuned workload
//	benchharness -exp b2 -json BENCH_B2.json   # machine-readable B1/B2/B9 rows
//	benchharness -exp b8 -trace-out spans.json # merged spans + breakdowns
//
// The Go-native testing.B versions of B1-B4 live in bench_test.go at the
// repository root (go test -bench=.).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"unidir/internal/obs"
)

// benchRow is one machine-readable measurement (B1/B2), emitted via -json.
type benchRow struct {
	Exp           string  `json:"exp"`
	Impl          string  `json:"impl"`
	N             int     `json:"n"`
	F             int     `json:"f"`
	Phases        int     `json:"phases,omitempty"`
	Shards        int     `json:"shards,omitempty"` // B11: consensus groups behind the router
	Batch         int     `json:"batch,omitempty"`
	Window        int     `json:"window,omitempty"`
	Ops           int     `json:"ops"`
	Seconds       float64 `json:"seconds"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	MeanLatencyUS float64 `json:"mean_latency_us"`
	P50LatencyUS  float64 `json:"p50_latency_us,omitempty"`
	P99LatencyUS  float64 `json:"p99_latency_us,omitempty"`

	// B9 (latency/throughput frontier) fields.
	Mode          string  `json:"mode,omitempty"`            // B9: "adaptive"/"fixed"; B10: "lease"/"consensus"
	OfferedPerSec float64 `json:"offered_per_sec,omitempty"` // open-loop target rate
	Sheds         int     `json:"sheds,omitempty"`           // requests shed (ErrOverloaded)
	WindowEnd     int     `json:"window_end,omitempty"`      // effective client window at the end

	// B10 (read fast path) fields.
	ReadRatio   float64 `json:"read_ratio,omitempty"` // fraction of ops that are reads
	ReadsPerSec float64 `json:"reads_per_sec,omitempty"`
	ReadP50US   float64 `json:"read_p50_us,omitempty"`
	ReadP99US   float64 `json:"read_p99_us,omitempty"`
}

// report collects benchRows across experiments; nil-safe so drivers add
// rows unconditionally.
type report struct {
	rows []benchRow
}

func (r *report) add(row benchRow) {
	if r != nil {
		r.rows = append(r.rows, row)
	}
}

func (r *report) write(path string) error {
	b, err := json.MarshalIndent(r.rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func main() {
	exp := flag.String("exp", "all", "experiments to run: all, or a comma-separated subset of f1,e1,b1,b2,b3,b4,b8,b9,b10,b11,b12")
	msgs := flag.Int("msgs", 200, "broadcasts per configuration (B1)")
	ops := flag.Int("ops", 500, "client operations per configuration (B2)")
	iters := flag.Int("iters", 5000, "iterations per microbenchmark (B3)")
	roundsN := flag.Int("rounds", 500, "rounds per system (B4)")
	jsonPath := flag.String("json", "", "write machine-readable B1/B2 rows to this file")
	traceOut := flag.String("trace-out", "", "write B8's merged spans and per-request breakdowns to this file")
	readRatio := flag.Float64("read-ratio", -1, "B10 read fraction in [0,1] (-1 sweeps 0.9 and 1.0)")
	flag.Parse()

	fmt.Fprintln(os.Stderr, obs.BuildInfoLine("benchharness"))
	if err := run(strings.ToLower(*exp), *msgs, *ops, *iters, *roundsN, *readRatio, *jsonPath, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "benchharness:", err)
		os.Exit(1)
	}
}

func run(exp string, msgs, ops, iters, roundsN int, readRatio float64, jsonPath, traceOut string) error {
	rep := &report{}
	type experiment struct {
		id  string
		fn  func() error
		sep bool
	}
	all := []experiment{
		{"f1", expF1, true},
		{"e1", expE1, true},
		{"b1", func() error { return expB1(msgs, rep) }, true},
		{"b2", func() error { return expB2(ops, rep) }, true},
		{"b3", func() error { return expB3(iters) }, true},
		{"b4", func() error { return expB4(roundsN) }, true},
		{"b8", func() error { return expB8(ops, traceOut) }, false},
		{"b9", func() error { return expB9(ops, rep) }, true},
		{"b10", func() error { return expB10(ops, readRatio, rep) }, true},
		{"b11", func() error { return expB11(ops, rep) }, true},
		{"b12", func() error { return expB12(ops, rep) }, true},
	}
	want := map[string]bool{}
	for _, id := range strings.Split(exp, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	matched := 0
	for _, e := range all {
		if !want["all"] && !want[e.id] {
			continue
		}
		matched++
		if err := e.fn(); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		if e.sep && (want["all"] || len(want) > matched) {
			fmt.Println()
		}
	}
	if matched == 0 {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if jsonPath != "" {
		if err := rep.write(jsonPath); err != nil {
			return fmt.Errorf("write %s: %w", jsonPath, err)
		}
		fmt.Printf("wrote %d rows to %s\n", len(rep.rows), jsonPath)
	}
	return nil
}
