package main

// B12: introspection-plane overhead. The question: what does the watch
// auditor cost the data path? Each point is B11's 2-shard write workload
// (same link delay, windows, and batch deadline, so the no-doctor row is
// directly comparable to BENCH_9.json's shards=2 write row); the doctor
// row adds a Watcher polling every replica's Status at a 1s interval —
// the cadence unidir-doctor -watch 1s uses — for the whole run, auditing
// each scrape. Overhead is the throughput delta between the rows.
//
// Status requests ride the replicas' ordinary event queues, so the cost of
// a scrape is six queue round-trips per second against tens of thousands
// of consensus events — the acceptance bar is <= 2% throughput loss.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"time"

	"unidir/internal/cluster"
	"unidir/internal/harness"
	"unidir/internal/obs"
	"unidir/internal/sig"
	"unidir/internal/watch"
)

const (
	b12Shards   = 2
	b12Interval = time.Second
)

func expB12(ops int, rep *report) error {
	fmt.Println("B12: introspection overhead — B11's 2-shard write point with and without a 1s-polling auditor (minbft, f=1 per group)")
	fmt.Printf("  %-14s %6s %8s %10s %10s %10s\n",
		"point", "shards", "ops", "ops/s", "p50", "p99")

	var baseline float64
	for _, doctor := range []bool{false, true} {
		perGroup := b11WriteOps(ops)
		reg := obs.NewRegistry()
		sc, err := harness.BuildSharded(cluster.MinBFT, harness.ShardedConfig{
			Shards:    b12Shards,
			LinkDelay: b11LinkDelay,
			SMR: harness.SMRConfig{
				F: 1, Scheme: sig.HMAC,
				Batch: b11Batch, Window: b11WriteWindow,
				BatchDeadline: b11Deadline,
				Metrics:       reg,
			},
		})
		if err != nil {
			return err
		}

		mode := "no-doctor"
		var stopWatch context.CancelFunc
		var watcher *watch.Watcher
		if doctor {
			mode = "doctor-1s"
			obs.SetBuildInfo(reg, "binary", "benchharness")
			var sources []watch.Source
			for g, group := range sc.Groups {
				providers := make([]obs.StatusProvider, 0, len(group.Replicas))
				for _, r := range group.Replicas {
					if sp := cluster.StatusProvider(r); sp != nil {
						providers = append(providers, sp)
					}
				}
				sources = append(sources, watch.Local(strconv.Itoa(g), providers...))
			}
			watcher = watch.New(watch.Config{
				Sources: sources,
				Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
				Metrics: reg,
			})
			var wctx context.Context
			wctx, stopWatch = context.WithCancel(context.Background())
			go watcher.Run(wctx, b12Interval)
		}

		lats, sheds, elapsed, err := b11Drive(sc, perGroup, false)
		if stopWatch != nil {
			stopWatch()
		}
		sc.Stop()
		if err != nil {
			return fmt.Errorf("b12 %s: %w", mode, err)
		}
		if watcher != nil {
			if n := watcher.TotalViolations(); n != 0 {
				return fmt.Errorf("b12: auditor flagged %d violations on a healthy run: %+v",
					n, watcher.Violations())
			}
			if got := reg.Snapshot().Counter("watch_scrapes_total"); got == 0 {
				return fmt.Errorf("b12: auditor never scraped")
			}
		}

		total := b12Shards * perGroup
		opsPerSec := float64(len(lats)) / elapsed.Seconds()
		p50, p99 := percentileUS(lats, 0.50), percentileUS(lats, 0.99)
		overhead := ""
		if !doctor {
			baseline = opsPerSec
		} else if baseline > 0 {
			overhead = fmt.Sprintf("  (%+.2f%% vs no-doctor)", 100*(opsPerSec-baseline)/baseline)
		}
		fmt.Printf("  %-14s %6d %8d %10.0f %9.0fµs %9.0fµs%s\n",
			mode, b12Shards, total, opsPerSec, p50, p99, overhead)
		rep.add(benchRow{
			Exp: "b12", Impl: "minbft", N: 3, F: 1, Shards: b12Shards,
			Batch: b11Batch, Window: b11WriteWindow, Ops: total,
			Seconds:       elapsed.Seconds(),
			OpsPerSec:     opsPerSec,
			MeanLatencyUS: meanUS(lats),
			P50LatencyUS:  p50,
			P99LatencyUS:  p99,
			Mode:          mode,
			Sheds:         sheds,
		})
	}
	return nil
}
