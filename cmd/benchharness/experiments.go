package main

// The experiment drivers. IDs follow DESIGN.md's per-experiment index.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
	"unidir/internal/harness"

	"unidir/internal/core"
	"unidir/internal/kvstore"
	"unidir/internal/rounds"
	"unidir/internal/separation"
	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/smr"
	"unidir/internal/srb"
	"unidir/internal/trusted/swmr"
	"unidir/internal/trusted/trinc"
	"unidir/internal/trusted/trincfromsrb"
	"unidir/internal/types"
)

// --- F1: the implication matrix of Figure 1, checked live ---

// edge is one arrow of Figure 1 with a live witness check.
type edge struct {
	from, to string
	note     string
	check    func() error
}

func expF1() error {
	fmt.Println("F1: implication matrix (Figure 1) — every arrow backed by a live construction")
	edges := []edge{
		{
			from: "SWMR/ACL shared memory", to: "unidirectional rounds",
			note: "write-then-scan (Claim 3.2)",
			check: func() error {
				violations, err := separation.RunSWMRControl(harness.MustMembership(5, 2), 3, 1)
				if err != nil {
					return err
				}
				if len(violations) != 0 {
					return fmt.Errorf("%d violations", len(violations))
				}
				return nil
			},
		},
		{
			from: "unidirectional rounds", to: "sequenced reliable broadcast",
			note:  "Algorithm 1 (L1/L2 proofs), n >= 2t+1",
			check: func() error { return checkSRBDelivery(harness.BuildUniroundCluster, harness.MustMembership(5, 2)) },
		},
		{
			from: "trusted logs (TrInc)", to: "sequenced reliable broadcast",
			note:  "attested chain + relay",
			check: func() error { return checkSRBDelivery(harness.BuildTrincCluster, harness.MustMembership(4, 1)) },
		},
		{
			from: "sequenced reliable broadcast", to: "TrInc interface",
			note:  "Theorem 1",
			check: checkTrincFromSRB,
		},
		{
			from: "reliable broadcast (f=1, n>=3)", to: "unidirectional rounds",
			note:  "two-phase forwarding (Appendix corner case)",
			check: checkRBF1,
		},
		{
			from: "SRB / eventual delivery", to: "unidirectional rounds",
			note: "IMPOSSIBLE for n > 2f, f > 1 (separation, §4.1)",
			check: func() error {
				out, err := separation.RunScenario(harness.MustMembership(5, 2), 3, 10*time.Second)
				if err != nil {
					return err
				}
				if len(out.Violations) == 0 {
					return fmt.Errorf("expected a violation, found none")
				}
				return nil // the check passes when the violation is exhibited
			},
		},
		{
			from: "bidirectional (lock-step)", to: "unidirectional rounds",
			note:  "by definition",
			check: checkLockstepSubsumes,
		},
	}
	for _, e := range edges {
		status := "PASS"
		if err := e.check(); err != nil {
			status = fmt.Sprintf("FAIL (%v)", err)
		}
		fmt.Printf("  %-34s => %-30s  [%s]  %s\n", e.from, e.to, status, e.note)
	}
	return nil
}

func checkSRBDelivery(build func(types.Membership) (*harness.SRBCluster, error), m types.Membership) error {
	c, err := build(m)
	if err != nil {
		return err
	}
	defer c.Stop()
	if _, err := c.Nodes[0].Broadcast([]byte("f1-check")); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for _, n := range c.Nodes {
		d, err := n.Deliver(ctx)
		if err != nil {
			return fmt.Errorf("%v never delivered: %w", n.Self(), err)
		}
		if string(d.Data) != "f1-check" {
			return fmt.Errorf("%v delivered %q", n.Self(), d.Data)
		}
	}
	return nil
}

func checkTrincFromSRB() error {
	m := harness.MustMembership(4, 1)
	c, err := harness.BuildBrachaCluster(m) // TrInc from no hardware at all
	if err != nil {
		return err
	}
	defer c.Stop()
	trinkets := make([]*trincfromsrb.Trinket, m.N)
	for i, n := range c.Nodes {
		trinkets[i] = trincfromsrb.New(n)
		defer trinkets[i].Close()
	}
	att, err := trinkets[0].Attest(1, []byte("f1"))
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for _, tk := range trinkets {
		if err := tk.WaitAttestation(ctx, att, 0); err != nil {
			return err
		}
	}
	return nil
}

func checkRBF1() error {
	m := harness.MustMembership(4, 1)
	net, err := simnet.New(m)
	if err != nil {
		return err
	}
	defer net.Close()
	rings, err := sig.NewKeyrings(m, sig.HMAC, rand.New(rand.NewSource(5)))
	if err != nil {
		return err
	}
	checker := core.NewUniChecker()
	systems := make([]rounds.System, m.N)
	for i := 0; i < m.N; i++ {
		systems[i], err = rounds.NewRBF1(net.Endpoint(types.ProcessID(i)), m, rings[i],
			rounds.WithRBF1Observer(checker))
		if err != nil {
			return err
		}
	}
	defer func() {
		for _, s := range systems {
			_ = s.Close()
		}
	}()
	if err := runOneRound(systems); err != nil {
		return err
	}
	for _, s := range systems {
		_ = s.Close()
	}
	if v := checker.Violations(m.All()); len(v) != 0 {
		return fmt.Errorf("violations: %v", v)
	}
	return nil
}

func checkLockstepSubsumes() error {
	m := harness.MustMembership(4, 1)
	net, err := simnet.New(m)
	if err != nil {
		return err
	}
	defer net.Close()
	checker := core.NewUniChecker()
	systems := make([]rounds.System, m.N)
	for i := 0; i < m.N; i++ {
		systems[i], err = rounds.NewLockstep(net.Endpoint(types.ProcessID(i)), m,
			rounds.WithLockstepObserver(checker))
		if err != nil {
			return err
		}
	}
	defer func() {
		for _, s := range systems {
			_ = s.Close()
		}
	}()
	if err := runOneRound(systems); err != nil {
		return err
	}
	for _, s := range systems {
		_ = s.Close()
	}
	if v := checker.Violations(m.All()); len(v) != 0 {
		return fmt.Errorf("violations: %v", v)
	}
	return nil
}

func runOneRound(systems []rounds.System) error {
	errCh := make(chan error, len(systems))
	for i, sys := range systems {
		go func(i int, sys rounds.System) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := sys.Send(1, []byte{byte(i)}); err != nil {
				errCh <- err
				return
			}
			_, err := sys.WaitEnd(ctx, 1)
			errCh <- err
		}(i, sys)
	}
	for range systems {
		if err := <-errCh; err != nil {
			return err
		}
	}
	return nil
}

// --- E1: the separation experiment ---

func expE1() error {
	m := harness.MustMembership(5, 2)
	res, err := separation.Run(m, 10*time.Second, 5)
	if err != nil {
		return err
	}
	fmt.Println("E1: separation (SRB cannot implement unidirectionality, n > 2f, f > 1)")
	fmt.Printf("  scenario 1: completed=%d violations=%d\n", len(res.Scenario1.Completed), len(res.Scenario1.Violations))
	fmt.Printf("  scenario 2: completed=%d violations=%d\n", len(res.Scenario2.Completed), len(res.Scenario2.Violations))
	fmt.Printf("  scenario 3: completed=%d violations=%d  <- the forced violation\n",
		len(res.Scenario3.Completed), len(res.Scenario3.Violations))
	fmt.Printf("  SWMR control: %d schedules, %d violations\n", res.SWMRSchedules, len(res.SWMRViolations))
	return nil
}

// --- B1: SRB broadcast cost across substrates ---

func expB1(msgs int, rep *report) error {
	fmt.Println("B1: SRB broadcast latency/throughput by substrate and n")
	fmt.Printf("  %-10s %4s %4s  %12s %14s\n", "impl", "n", "f", "msgs/s", "mean latency")
	type builder struct {
		name  string
		build func(types.Membership) (*harness.SRBCluster, error)
		nf    func(n int) (int, int)
	}
	builders := []builder{
		{"trincsrb", harness.BuildTrincCluster, func(n int) (int, int) { return n, (n - 1) / 2 }},
		{"a2msrb", harness.BuildA2MCluster, func(n int) (int, int) { return n, (n - 1) / 2 }},
		{"uniround", harness.BuildUniroundCluster, func(n int) (int, int) { return n, (n - 1) / 2 }},
		{"bracha", harness.BuildBrachaCluster, func(n int) (int, int) { return n, (n - 1) / 3 }},
	}
	for _, b := range builders {
		for _, n := range []int{4, 7, 10, 13} {
			nn, f := b.nf(n)
			m := harness.MustMembership(nn, f)
			c, err := b.build(m)
			if err != nil {
				return err
			}
			elapsed, err := timeSRBBroadcasts(c, msgs)
			c.Stop()
			if err != nil {
				return fmt.Errorf("%s n=%d: %w", b.name, n, err)
			}
			rate := float64(msgs) / elapsed.Seconds()
			fmt.Printf("  %-10s %4d %4d  %12.0f %14s\n",
				b.name, nn, f, rate, (elapsed / time.Duration(msgs)).Round(time.Microsecond))
			rep.add(benchRow{
				Exp: "b1", Impl: b.name, N: nn, F: f, Ops: msgs,
				Seconds:       elapsed.Seconds(),
				OpsPerSec:     rate,
				MeanLatencyUS: float64(elapsed.Microseconds()) / float64(msgs),
			})
		}
	}
	return nil
}

// timeSRBBroadcasts measures broadcasting msgs messages from node 0 until
// every node delivers all of them.
func timeSRBBroadcasts(c *harness.SRBCluster, msgs int) (time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	start := time.Now()
	errCh := make(chan error, len(c.Nodes))
	for _, n := range c.Nodes {
		go func(n srb.Node) {
			for i := 0; i < msgs; i++ {
				if _, err := n.Deliver(ctx); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(n)
	}
	payload := make([]byte, 128)
	for i := 0; i < msgs; i++ {
		if _, err := c.Nodes[0].Broadcast(payload); err != nil {
			return 0, err
		}
	}
	for range c.Nodes {
		if err := <-errCh; err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// --- B2: SMR comparison (MinBFT vs PBFT) ---

func expB2(ops int, rep *report) error {
	type protocol struct {
		name   string
		build  func(harness.SMRConfig) (*harness.SMRCluster, error)
		nOf    func(int) int
		phases int
	}
	protocols := []protocol{
		{"minbft", harness.BuildMinBFTCfg, func(f int) int { return 2*f + 1 }, 2},
		{"pbft", harness.BuildPBFTCfg, func(f int) int { return 3*f + 1 }, 3},
	}

	fmt.Println("B2: BFT SMR — MinBFT (trusted hardware, n=2f+1) vs PBFT (n=3f+1)")
	fmt.Println("  closed-loop client (one request outstanding, batch=1):")
	fmt.Printf("  %-8s %3s %10s %10s  %12s %14s\n", "protocol", "f", "replicas", "phases", "ops/s", "mean latency")
	for _, f := range []int{1, 2, 3} {
		for _, p := range protocols {
			// Batch: 1 pins the seed behavior: a closed-loop client never
			// gives the primary more than one request to pack anyway.
			c, err := p.build(harness.SMRConfig{F: f, Scheme: sig.HMAC, Batch: 1})
			if err != nil {
				return err
			}
			elapsed, lats, err := timeKVOps(c.KV, ops)
			c.Stop()
			if err != nil {
				return fmt.Errorf("%s f=%d: %w", p.name, f, err)
			}
			rate := float64(ops) / elapsed.Seconds()
			fmt.Printf("  %-8s %3d %10d %10d  %12.0f %14s\n",
				p.name, f, p.nOf(f), p.phases, rate, (elapsed / time.Duration(ops)).Round(time.Microsecond))
			rep.add(benchRow{
				Exp: "b2", Impl: p.name, N: p.nOf(f), F: f, Phases: p.phases, Batch: 1, Ops: ops,
				Seconds:       elapsed.Seconds(),
				OpsPerSec:     rate,
				MeanLatencyUS: float64(elapsed.Microseconds()) / float64(ops),
				P50LatencyUS:  percentileUS(lats, 0.50),
				P99LatencyUS:  percentileUS(lats, 0.99),
			})
		}
	}

	const window = 32
	fmt.Printf("  pipelined client (window=%d), batched vs unbatched consensus, f=1:\n", window)
	fmt.Printf("  %-8s %6s  %12s %14s\n", "protocol", "batch", "ops/s", "mean latency")
	for _, p := range protocols {
		for _, batch := range []int{1, 64} {
			c, err := p.build(harness.SMRConfig{F: 1, Scheme: sig.HMAC, Batch: batch, Window: window})
			if err != nil {
				return err
			}
			elapsed, lats, err := timeKVOpsPipelined(c.Pipe, ops)
			c.Stop()
			if err != nil {
				return fmt.Errorf("%s batch=%d: %w", p.name, batch, err)
			}
			rate := float64(ops) / elapsed.Seconds()
			fmt.Printf("  %-8s %6d  %12.0f %14s\n",
				p.name, batch, rate, (elapsed / time.Duration(ops)).Round(time.Microsecond))
			rep.add(benchRow{
				Exp: "b2", Impl: p.name + "-pipelined", N: p.nOf(1), F: 1, Phases: p.phases,
				Batch: batch, Window: window, Ops: ops,
				Seconds:       elapsed.Seconds(),
				OpsPerSec:     rate,
				MeanLatencyUS: float64(elapsed.Microseconds()) / float64(ops),
				P50LatencyUS:  percentileUS(lats, 0.50),
				P99LatencyUS:  percentileUS(lats, 0.99),
			})
		}
	}
	return nil
}

func timeKVOps(kv *kvstore.Client, ops int) (time.Duration, []time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	lats := make([]time.Duration, 0, ops)
	start := time.Now()
	for i := 0; i < ops; i++ {
		t0 := time.Now()
		if err := kv.Put(ctx, fmt.Sprintf("key-%d", i%64), []byte("value")); err != nil {
			return 0, nil, err
		}
		lats = append(lats, time.Since(t0))
	}
	return time.Since(start), lats, nil
}

// timeKVOpsPipelined issues ops puts through the pipelined client, keeping
// up to its window in flight, and waits for every reply. The returned
// latencies are submit-to-completion (they include window queueing).
func timeKVOpsPipelined(kv *kvstore.PipeClient, ops int) (time.Duration, []time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	start := time.Now()
	calls := make([]*smr.Call, 0, ops)
	lats := make([]time.Duration, ops)
	var wg sync.WaitGroup
	for i := 0; i < ops; i++ {
		t0 := time.Now()
		call, err := kv.PutAsync(ctx, fmt.Sprintf("key-%d", i%64), []byte("value"))
		if err != nil {
			return 0, nil, err
		}
		calls = append(calls, call)
		wg.Add(1)
		go func(i int, call *smr.Call, t0 time.Time) {
			defer wg.Done()
			<-call.Done()
			lats[i] = time.Since(t0)
		}(i, call, t0)
	}
	for _, call := range calls {
		if _, err := call.Result(); err != nil {
			return 0, nil, err
		}
	}
	wg.Wait()
	return time.Since(start), lats, nil
}

// percentile returns the q-quantile (0 < q <= 1) of lats by nearest-rank,
// in microseconds. Zero when empty.
func percentileUS(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Microseconds())
}

// --- B3: trusted hardware microbenchmarks ---

func expB3(iters int) error {
	fmt.Println("B3: trusted hardware and signature microbenchmarks")
	m := harness.MustMembership(4, 1)
	msg := make([]byte, 128)

	for _, scheme := range []sig.Scheme{sig.Ed25519, sig.HMAC} {
		rings, err := sig.NewKeyrings(m, scheme, rand.New(rand.NewSource(6)))
		if err != nil {
			return err
		}
		start := time.Now()
		var s []byte
		for i := 0; i < iters; i++ {
			s = rings[0].Sign(msg)
		}
		signTime := time.Since(start) / time.Duration(iters)
		start = time.Now()
		for i := 0; i < iters; i++ {
			if err := rings[1].Verify(0, msg, s); err != nil {
				return err
			}
		}
		verifyTime := time.Since(start) / time.Duration(iters)
		fmt.Printf("  %-22s sign %10s   verify %10s\n", scheme, signTime, verifyTime)
	}

	tu, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(7)))
	if err != nil {
		return err
	}
	start := time.Now()
	var att trinc.Attestation
	for i := 0; i < iters; i++ {
		att, err = tu.Devices[0].Attest(0, types.SeqNum(i+1), msg)
		if err != nil {
			return err
		}
	}
	attestTime := time.Since(start) / time.Duration(iters)
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := tu.Verifier.CheckMessage(att, msg); err != nil {
			return err
		}
	}
	checkTime := time.Since(start) / time.Duration(iters)
	fmt.Printf("  %-22s attest %8s   check %11s\n", "trinc (hmac)", attestTime, checkTime)

	store, err := swmr.NewStore(m)
	if err != nil {
		return err
	}
	mem := swmr.NewLocal(store, 0)
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := mem.Write(msg); err != nil {
			return err
		}
	}
	writeTime := time.Since(start) / time.Duration(iters)
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, _, err := mem.Read(0); err != nil {
			return err
		}
	}
	readTime := time.Since(start) / time.Duration(iters)
	fmt.Printf("  %-22s write %9s   read %12s\n", "swmr register", writeTime, readTime)
	return nil
}

// --- B4: round-system ablation ---

func expB4(roundsN int) error {
	fmt.Println("B4: cost of one round by round system (n=5)")
	m := harness.MustMembership(5, 2)

	type sysBuilder struct {
		name  string
		build func() ([]rounds.System, func(), error)
	}
	builders := []sysBuilder{
		{"swmr (unidirectional)", func() ([]rounds.System, func(), error) {
			store, err := swmr.NewStore(m)
			if err != nil {
				return nil, nil, err
			}
			systems := make([]rounds.System, m.N)
			for i := 0; i < m.N; i++ {
				systems[i], err = rounds.NewSWMR(swmr.NewLocal(store, types.ProcessID(i)), m)
				if err != nil {
					return nil, nil, err
				}
			}
			return systems, func() {}, nil
		}},
		{"async (zero-directional)", func() ([]rounds.System, func(), error) {
			net, err := simnet.New(m)
			if err != nil {
				return nil, nil, err
			}
			systems := make([]rounds.System, m.N)
			for i := 0; i < m.N; i++ {
				systems[i], err = rounds.NewAsync(net.Endpoint(types.ProcessID(i)), m)
				if err != nil {
					return nil, nil, err
				}
			}
			return systems, net.Close, nil
		}},
		{"lockstep (bidirectional)", func() ([]rounds.System, func(), error) {
			net, err := simnet.New(m)
			if err != nil {
				return nil, nil, err
			}
			systems := make([]rounds.System, m.N)
			for i := 0; i < m.N; i++ {
				systems[i], err = rounds.NewLockstep(net.Endpoint(types.ProcessID(i)), m)
				if err != nil {
					return nil, nil, err
				}
			}
			return systems, net.Close, nil
		}},
	}
	for _, b := range builders {
		systems, cleanup, err := b.build()
		if err != nil {
			return err
		}
		start := time.Now()
		errCh := make(chan error, len(systems))
		for i, sys := range systems {
			go func(i int, sys rounds.System) {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				for r := types.Round(1); r <= types.Round(roundsN); r++ {
					if err := sys.Send(r, []byte{byte(i)}); err != nil {
						errCh <- err
						return
					}
					if _, err := sys.WaitEnd(ctx, r); err != nil {
						errCh <- err
						return
					}
				}
				errCh <- nil
			}(i, sys)
		}
		var firstErr error
		for range systems {
			if err := <-errCh; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		elapsed := time.Since(start)
		for _, sys := range systems {
			_ = sys.Close()
		}
		cleanup()
		if firstErr != nil {
			return fmt.Errorf("%s: %w", b.name, firstErr)
		}
		fmt.Printf("  %-26s %8.0f rounds/s  (%s per round, all-process barrierless)\n",
			b.name, float64(roundsN)/elapsed.Seconds(), (elapsed / time.Duration(roundsN)).Round(time.Microsecond))
	}
	return nil
}
