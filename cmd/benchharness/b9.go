package main

// B9: the latency/throughput frontier. An open-loop load generator paces
// puts at a target offered rate through the pipelined client while the
// cluster runs either the adaptive flow-control stack (size-or-deadline
// batching + admission control + AIMD client window) or the fixed-window
// baseline (every partial batch held for the full deadline, no shedding).
// Each point reports achieved throughput, p50/p99 completion latency, and
// how many requests were shed — the frontier is the curve those points
// trace as offered load passes saturation.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"unidir/internal/harness"
	"unidir/internal/kvstore"
	"unidir/internal/sig"
	"unidir/internal/smr"
)

// b9Rates is the offered-load sweep, requests/second. The top rates sit past
// simnet saturation for both protocols so the degradation behavior shows.
var b9Rates = []int{2_000, 8_000, 32_000, 64_000, 128_000}

const (
	b9Batch    = 64
	b9Window   = 256
	b9Deadline = 100 * time.Microsecond
	// b9AdmitPending sits below the client window so that past saturation the
	// replicas' pending queues actually hit the bound and shed, rather than
	// the window absorbing the whole backlog.
	b9AdmitPending  = 128
	b9SubmitTimeout = 2 * time.Millisecond
	b9WindowMin     = 8
)

type b9Result struct {
	elapsed time.Duration
	lats    []time.Duration
	sheds   int
}

func expB9(ops int, rep *report) error {
	type protocol struct {
		name  string
		build func(harness.SMRConfig) (*harness.SMRCluster, error)
		n     int
	}
	protocols := []protocol{
		{"minbft", harness.BuildMinBFTCfg, 3},
		{"pbft", harness.BuildPBFTCfg, 4},
	}
	type mode struct {
		name string
		cfg  func() harness.SMRConfig
	}
	modes := []mode{
		{"adaptive", func() harness.SMRConfig {
			return harness.SMRConfig{
				F: 1, Scheme: sig.HMAC, Batch: b9Batch, Window: b9Window,
				BatchDeadline:  b9Deadline,
				Admission:      &smr.AdmissionConfig{MaxPending: b9AdmitPending},
				SubmitTimeout:  b9SubmitTimeout,
				AdaptiveWindow: b9WindowMin,
			}
		}},
		// The baseline: a fixed batch window — every partial batch waits out
		// the same deadline regardless of load — with no shedding and a fixed
		// client window that blocks when full.
		{"fixed", func() harness.SMRConfig {
			return harness.SMRConfig{
				F: 1, Scheme: sig.HMAC, Batch: b9Batch, Window: b9Window,
				BatchDeadline:    b9Deadline,
				FixedBatchWindow: true,
				Admission:        &smr.AdmissionConfig{},
				PaceDepth:        -1,
			}
		}},
	}

	fmt.Println("B9: latency/throughput frontier — adaptive flow control vs fixed baseline (f=1)")
	fmt.Printf("  %-8s %-9s %10s %10s %10s %10s %8s %7s\n",
		"protocol", "mode", "offered/s", "achieved/s", "p50", "p99", "sheds", "window")
	for _, p := range protocols {
		for _, m := range modes {
			for _, rate := range b9Rates {
				pointOps := b9PointOps(rate, ops)
				c, err := p.build(m.cfg())
				if err != nil {
					return err
				}
				res, err := paceKVOps(c.Pipe, rate, pointOps)
				windowEnd := c.Pipe.Window()
				c.Stop()
				if err != nil {
					return fmt.Errorf("%s/%s rate=%d: %w", p.name, m.name, rate, err)
				}
				achieved := float64(len(res.lats)) / res.elapsed.Seconds()
				p50 := percentileUS(res.lats, 0.50)
				p99 := percentileUS(res.lats, 0.99)
				fmt.Printf("  %-8s %-9s %10d %10.0f %9.0fµs %9.0fµs %8d %7d\n",
					p.name, m.name, rate, achieved, p50, p99, res.sheds, windowEnd)
				rep.add(benchRow{
					Exp: "b9", Impl: p.name, N: p.n, F: 1,
					Batch: b9Batch, Window: b9Window, Ops: pointOps,
					Seconds:       res.elapsed.Seconds(),
					OpsPerSec:     achieved,
					MeanLatencyUS: meanUS(res.lats),
					P50LatencyUS:  p50,
					P99LatencyUS:  p99,
					Mode:          m.name,
					OfferedPerSec: float64(rate),
					Sheds:         res.sheds,
					WindowEnd:     windowEnd,
				})
			}
		}
	}
	return nil
}

// b9PointOps sizes one sweep point: roughly a quarter second of traffic at
// the offered rate, floored at the -ops flag and capped at 40x it so the
// high-rate points stay affordable.
func b9PointOps(rate, ops int) int {
	n := rate / 4
	if n < ops {
		n = ops
	}
	if max := 40 * ops; n > max {
		n = max
	}
	return n
}

// paceKVOps offers ops puts at the target rate (requests/second) and waits
// for every outcome. A request that the stack sheds — at Submit (window
// exhausted past the timeout) or by a replica quorum (admission control) —
// counts in sheds and not in the latency sample. The pacer never bursts to
// catch up after a stall: offered load is a rate, not a debt.
func paceKVOps(kv *kvstore.PipeClient, rate, ops int) (b9Result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var (
		mu       sync.Mutex
		res      b9Result
		firstErr error
		wg       sync.WaitGroup
	)
	res.lats = make([]time.Duration, 0, ops)
	interval := time.Second / time.Duration(rate)
	start := time.Now()
	next := start
	for i := 0; i < ops; i++ {
		if d := time.Until(next); d > 50*time.Microsecond {
			time.Sleep(d)
		}
		next = next.Add(interval)
		if now := time.Now(); next.Before(now) {
			next = now
		}
		t0 := time.Now()
		call, err := kv.PutAsync(ctx, fmt.Sprintf("key-%d", i%64), []byte("value"))
		if err != nil {
			if errors.Is(err, smr.ErrOverloaded) {
				mu.Lock()
				res.sheds++
				mu.Unlock()
				continue
			}
			return res, err
		}
		wg.Add(1)
		go func(call *smr.Call, t0 time.Time) {
			defer wg.Done()
			_, err := call.Result()
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				res.lats = append(res.lats, lat)
			case errors.Is(err, smr.ErrOverloaded):
				res.sheds++
			case firstErr == nil:
				firstErr = err
			}
		}(call, t0)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	return res, firstErr
}

func meanUS(lats []time.Duration) float64 {
	if len(lats) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	return float64(sum.Microseconds()) / float64(len(lats))
}
