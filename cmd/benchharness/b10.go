package main

// B10: the read fast path. A mixed read/write workload runs through the
// pipelined client at the configured read ratio, with reads taking either
// the leased fast path (the leader answers locally under a
// trusted-counter-attested lease, two messages per read) or the ordering
// path (every read is a consensus instance — the baseline the lease is
// measured against). Each point reports read and write throughput and
// latency percentiles; the headline number is the read-throughput ratio
// between the two modes at the same read mix.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"unidir/internal/harness"
	"unidir/internal/kvstore"
	"unidir/internal/sig"
	"unidir/internal/smr"
)

// b10Ratios is the default read-mix sweep: read-heavy and read-only.
var b10Ratios = []float64{0.9, 1.0}

const (
	b10Batch      = 64
	b10Window     = 256
	b10ReadWindow = 256
	b10Deadline   = 100 * time.Microsecond
	b10Keys       = 64
	// b10Clients pipelined clients drive the workload concurrently: a single
	// client's receive loop tops out near the replicas' reply rate, which
	// would measure the client, not the read path.
	b10Clients = 4
)

type b10Result struct {
	elapsed   time.Duration
	readLats  []time.Duration
	writeLats []time.Duration
}

func expB10(ops int, readRatio float64, rep *report) error {
	ratios := b10Ratios
	if readRatio >= 0 {
		if readRatio > 1 {
			return fmt.Errorf("-read-ratio must be in [0, 1]")
		}
		ratios = []float64{readRatio}
	}
	type protocol struct {
		name  string
		build func(harness.SMRConfig) (*harness.SMRCluster, error)
		n     int
	}
	protocols := []protocol{
		{"minbft", harness.BuildMinBFTCfg, 3},
		{"pbft", harness.BuildPBFTCfg, 4},
	}
	type mode struct {
		name  string
		lease time.Duration // LeaseTerm for the cluster config
	}
	modes := []mode{
		{"lease", 0},      // replica default: leases on (UNIDIR_LEASE, 250ms)
		{"consensus", -1}, // leases off; reads ride the ordering path
	}

	fmt.Println("B10: read fast path — leased reads vs consensus-path reads (f=1, adaptive batching)")
	fmt.Printf("  %-8s %-10s %6s %10s %10s %10s %10s %10s %10s\n",
		"protocol", "mode", "reads", "reads/s", "rd p50", "rd p99", "writes/s", "wr p50", "wr p99")
	for _, p := range protocols {
		for _, m := range modes {
			for _, ratio := range ratios {
				pointOps := b10PointOps(ops)
				c, err := p.build(harness.SMRConfig{
					F: 1, Scheme: sig.HMAC, Batch: b10Batch, Window: b10Window,
					BatchDeadline: b10Deadline,
					LeaseTerm:     m.lease,
					ReadWindow:    b10ReadWindow,
					PipeClients:   b10Clients,
				})
				if err != nil {
					return err
				}
				res, err := mixedKVOps(c.Pipes, ratio, pointOps, m.name == "lease")
				c.Stop()
				if err != nil {
					return fmt.Errorf("%s/%s ratio=%.2f: %w", p.name, m.name, ratio, err)
				}
				readsPerSec := float64(len(res.readLats)) / res.elapsed.Seconds()
				writesPerSec := float64(len(res.writeLats)) / res.elapsed.Seconds()
				rp50, rp99 := percentileUS(res.readLats, 0.50), percentileUS(res.readLats, 0.99)
				wp50, wp99 := percentileUS(res.writeLats, 0.50), percentileUS(res.writeLats, 0.99)
				fmt.Printf("  %-8s %-10s %5.0f%% %10.0f %9.0fµs %9.0fµs %10.0f %9.0fµs %9.0fµs\n",
					p.name, m.name, ratio*100, readsPerSec, rp50, rp99, writesPerSec, wp50, wp99)
				rep.add(benchRow{
					Exp: "b10", Impl: p.name, N: p.n, F: 1,
					Batch: b10Batch, Window: b10Window, Ops: pointOps,
					Seconds:       res.elapsed.Seconds(),
					OpsPerSec:     readsPerSec + writesPerSec,
					MeanLatencyUS: meanUS(res.writeLats),
					P50LatencyUS:  wp50,
					P99LatencyUS:  wp99,
					Mode:          m.name,
					ReadRatio:     ratio,
					ReadsPerSec:   readsPerSec,
					ReadP50US:     rp50,
					ReadP99US:     rp99,
				})
			}
		}
	}
	return nil
}

// b10PointOps sizes one point: at least 4x the -ops flag, floored high
// enough that a point spans hundreds of milliseconds — the leased path
// moves >200k reads/s, and a sub-100ms sample is ramp-up, not steady state
// (bench-regress gates these rows, so they need to be reproducible).
func b10PointOps(ops int) int {
	if n := 4 * ops; n > 20000 {
		return n
	}
	return 20000
}

// mixedKVOps splits ops operations across the pipelined clients and drives
// each as fast as its windows admit: a ratio-sized fraction are GETs of
// pre-populated keys — via the read fast path when lease is true, via the
// ordering path otherwise — and the rest are PUTs. Returns merged latency
// samples per class; elapsed is the full fan-out wall time.
func mixedKVOps(kvs []*kvstore.PipeClient, ratio float64, ops int, lease bool) (b10Result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var res b10Result
	// Pre-populate the key space so every read hits, then give the primary a
	// beat to establish its first lease before the measured window opens.
	for i := 0; i < b10Keys; i++ {
		if err := kvs[0].Put(ctx, fmt.Sprintf("key-%d", i), []byte("value")); err != nil {
			return res, err
		}
	}
	time.Sleep(50 * time.Millisecond)

	// Per-client, per-op latency slots, merged after the fan-out: locking on
	// the completion path would serialize the very throughput being
	// measured. Each client goroutine owns its own slots; unfilled slots
	// (errors) merge as misses.
	type clientRes struct {
		lats   []time.Duration // slot i: op i's latency; 0 = errored
		isRead []bool
		err    atomic.Value
	}
	keys := make([]string, b10Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	var clients sync.WaitGroup
	perRes := make([]clientRes, len(kvs))
	reads := int(ratio * 100)
	perClient := ops / len(kvs)
	start := time.Now()
	for ci, kv := range kvs {
		clients.Add(1)
		cr := &perRes[ci]
		cr.lats = make([]time.Duration, perClient)
		cr.isRead = make([]bool, perClient)
		go func(cr *clientRes, kv *kvstore.PipeClient) {
			defer clients.Done()
			// Outstanding async calls await in submission order through a
			// bounded FIFO: one goroutine per client, not one per op — a
			// per-op awaiter goroutine costs more scheduler time than a
			// leased read itself and would measure the harness, not the
			// read path. FIFO await is safe because the submission windows
			// already bound how far completion can run ahead.
			type pend struct {
				i      int
				t0     time.Time
				result func() ([]byte, error)
			}
			const awaitDepth = 1024
			ring := make([]pend, awaitDepth)
			var submitted int
			await := func(pd pend) {
				if _, err := pd.result(); err != nil {
					cr.err.CompareAndSwap(nil, err)
					return
				}
				cr.lats[pd.i] = time.Since(pd.t0)
			}
			defer func() {
				tail := submitted - awaitDepth
				if tail < 0 {
					tail = 0
				}
				for j := tail; j < submitted; j++ {
					await(ring[j%awaitDepth])
				}
			}()
			for i := 0; i < perClient; i++ {
				key := keys[i%b10Keys]
				isRead := i%100 < reads
				cr.isRead[i] = isRead
				t0 := time.Now()
				var (
					result func() ([]byte, error)
					err    error
				)
				switch {
				case isRead && lease:
					var call *smr.ReadCall
					if call, err = kv.GetAsync(ctx, key); err == nil {
						result = call.Result
					}
				case isRead:
					var call *smr.Call
					if call, err = kv.GetOrderedAsync(ctx, key); err == nil {
						result = call.Result
					}
				default:
					var call *smr.Call
					if call, err = kv.PutAsync(ctx, key, []byte("value")); err == nil {
						result = call.Result
					}
				}
				if err != nil {
					cr.err.CompareAndSwap(nil, err)
					return
				}
				if submitted >= awaitDepth {
					await(ring[submitted%awaitDepth])
				}
				ring[submitted%awaitDepth] = pend{i, t0, result}
				submitted++
			}
		}(cr, kv)
	}
	clients.Wait()
	res.elapsed = time.Since(start)
	var firstErr error
	for ci := range perRes {
		cr := &perRes[ci]
		for i, lat := range cr.lats {
			if lat == 0 {
				continue
			}
			if cr.isRead[i] {
				res.readLats = append(res.readLats, lat)
			} else {
				res.writeLats = append(res.writeLats, lat)
			}
		}
		if err, ok := cr.err.Load().(error); ok && firstErr == nil {
			firstErr = err
		}
	}
	return res, firstErr
}
