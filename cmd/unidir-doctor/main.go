// Command unidir-doctor scrapes a cluster's introspection plane
// (/debug/status, or in-process replicas in harness mode), aggregates
// per-shard health, and audits the safety invariants the trusted hardware
// is supposed to enforce: equal checkpoint digests at equal counts,
// monotone trusted counters, executed ≤ proposed, and at most one lease
// holder per term. See internal/watch and DESIGN.md §10.
//
// Modes:
//
//	unidir-doctor -targets http://h1:7001,http://h2:7001   scrape live processes
//	unidir-doctor -cluster minbft -shards 2                self-driven in-process cluster
//	... -watch 1s                                          continuous; default one-shot
//
// One-shot runs scrape twice (the cross-scrape monotonicity rules need a
// baseline) and exit 0 when healthy, 1 on any violation, 2 on usage or
// scrape-setup errors — CI can gate directly on the exit code. -watch runs
// until interrupted and exits 1 if any violation was ever seen.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"unidir/internal/byz"
	"unidir/internal/cluster"
	"unidir/internal/harness"
	"unidir/internal/obs"
	"unidir/internal/sig"
	"unidir/internal/watch"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("unidir-doctor", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		targets  = fs.String("targets", "", "comma-separated /debug/status endpoints (or base URLs) to scrape")
		clusterP = fs.String("cluster", "", "build and drive an in-process cluster instead: minbft or pbft")
		shards   = fs.Int("shards", 2, "consensus groups in -cluster mode")
		f        = fs.Int("f", 1, "faults tolerated per group in -cluster mode")
		ops      = fs.Int("ops", 32, "writes to drive per shard in -cluster mode before auditing")
		watchInt = fs.Duration("watch", 0, "scrape continuously at this interval (0: one-shot)")
		gap      = fs.Duration("gap", 200*time.Millisecond, "pause between the two one-shot scrapes")
		forge    = fs.Int("forge-digest", -1, "fault injection (-cluster mode): shard-0 replica whose status forges its checkpoint digest")
		verbose  = fs.Bool("v", false, "log scrapes and violations to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	logOut := io.Discard
	if *verbose {
		logOut = stderr
	}
	lg := slog.New(slog.NewTextHandler(logOut, nil))
	reg := obs.NewRegistry()
	obs.SetBuildInfo(reg, "binary", "unidir-doctor")

	var sources []watch.Source
	var drive func(ctx context.Context) error
	switch {
	case *targets != "" && *clusterP != "":
		fmt.Fprintln(stderr, "unidir-doctor: -targets and -cluster are mutually exclusive")
		return 2
	case *targets != "":
		for _, u := range strings.Split(*targets, ",") {
			if u = strings.TrimSpace(u); u != "" {
				sources = append(sources, watch.HTTP(u))
			}
		}
		if len(sources) == 0 {
			fmt.Fprintln(stderr, "unidir-doctor: -targets named no endpoints")
			return 2
		}
	case *clusterP != "":
		var p cluster.Protocol
		switch *clusterP {
		case "minbft":
			p = cluster.MinBFT
		case "pbft":
			p = cluster.PBFT
		default:
			fmt.Fprintf(stderr, "unidir-doctor: unknown -cluster protocol %q\n", *clusterP)
			return 2
		}
		sc, err := harness.BuildSharded(p, harness.ShardedConfig{
			Shards: *shards,
			SMR:    harness.SMRConfig{F: *f, Scheme: sig.HMAC, Ckpt: 4, Batch: 4, Metrics: reg},
		})
		if err != nil {
			fmt.Fprintf(stderr, "unidir-doctor: build cluster: %v\n", err)
			return 2
		}
		defer sc.Stop()
		for g, group := range sc.Groups {
			providers := make([]obs.StatusProvider, 0, len(group.Replicas))
			for i, rep := range group.Replicas {
				sp := cluster.StatusProvider(rep)
				if sp == nil {
					fmt.Fprintf(stderr, "unidir-doctor: shard %d replica %d has no status surface\n", g, i)
					return 2
				}
				if g == 0 && i == *forge {
					sp = byz.ForgeCheckpointDigest(sp)
				}
				providers = append(providers, sp)
			}
			sources = append(sources, watch.Local(strconv.Itoa(g), providers...))
		}
		total := *ops * *shards
		drive = func(ctx context.Context) error {
			for i := 0; i < total; i++ {
				if err := sc.Client.Put(ctx, fmt.Sprintf("doctor-%d", i), []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
	default:
		fmt.Fprintln(stderr, "unidir-doctor: need -targets or -cluster (see -h)")
		return 2
	}

	w := watch.New(watch.Config{Sources: sources, Logger: lg, Metrics: reg})
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *watchInt > 0 {
		if drive != nil {
			go func() {
				if err := drive(ctx); err != nil && ctx.Err() == nil {
					lg.Warn("drive traffic failed", "err", err)
				}
			}()
		}
		w.Run(ctx, *watchInt)
		rep := w.Scrape(context.Background()) // final cut after the interrupt
		rep.Write(stdout)
		if n := w.TotalViolations(); n > 0 {
			fmt.Fprintf(stdout, "%d total violations\n", n)
			return 1
		}
		return 0
	}

	// One-shot: baseline scrape, traffic (or a pause), then the audited
	// scrape — the monotone and executed≤proposed rules compare the two.
	first := w.Scrape(ctx)
	if len(first.ScrapeErrors) > 0 {
		first.Write(stdout)
		return 2
	}
	if drive != nil {
		if err := drive(ctx); err != nil {
			fmt.Fprintf(stderr, "unidir-doctor: drive traffic: %v\n", err)
			return 2
		}
	} else {
		select {
		case <-time.After(*gap):
		case <-ctx.Done():
		}
	}
	rep := w.Scrape(ctx)
	rep.Violations = w.Violations() // fold in anything the baseline scrape caught
	rep.Write(stdout)
	switch {
	case len(rep.Violations) > 0:
		return 1
	case len(rep.ScrapeErrors) > 0:
		return 2
	}
	return 0
}
