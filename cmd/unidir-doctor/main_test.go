package main

import (
	"strings"
	"testing"
)

// TestDoctorHealthyCluster is the acceptance run: a one-shot doctor against
// a self-driven 2-shard MinBFT cluster reports healthy and exits 0.
func TestDoctorHealthyCluster(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-cluster", "minbft", "-shards", "2", "-ops", "24"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "healthy: no violations") {
		t.Fatalf("missing healthy verdict: %s", out.String())
	}
	for _, shard := range []string{"shard 0:", "shard 1:"} {
		if !strings.Contains(out.String(), shard) {
			t.Fatalf("missing %q in report: %s", shard, out.String())
		}
	}
}

// TestDoctorForgedDigestExitsNonzero: with shard-0 replica 1 forging its
// checkpoint digest, the doctor must exit 1 and print evidence naming it.
func TestDoctorForgedDigestExitsNonzero(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-cluster", "minbft", "-shards", "2", "-ops", "24", "-forge-digest", "1"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "VIOLATION [checkpoint-divergence]") {
		t.Fatalf("missing divergence violation: %s", s)
	}
	if !strings.Contains(s, `"diverging":[1]`) {
		t.Fatalf("evidence does not name replica 1: %s", s)
	}
}

// TestDoctorPBFTCluster: the untrusted protocol works too, with empty
// trusted-counter maps (the hybrid-trust distinction).
func TestDoctorPBFTCluster(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-cluster", "pbft", "-shards", "1", "-ops", "16"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

func TestDoctorUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-args exit = %d, want 2", code)
	}
	if code := run([]string{"-cluster", "raft"}, &out, &errOut); code != 2 {
		t.Fatalf("bad-protocol exit = %d, want 2", code)
	}
	if code := run([]string{"-cluster", "minbft", "-targets", "http://x"}, &out, &errOut); code != 2 {
		t.Fatalf("conflicting-modes exit = %d, want 2", code)
	}
}
