package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"unidir/internal/cluster"
	"unidir/internal/kvstore"
	"unidir/internal/minbft"
	"unidir/internal/obs"
	"unidir/internal/obs/tracing"
	"unidir/internal/shard"
	"unidir/internal/sig"
	"unidir/internal/smr"
	"unidir/internal/tcpnet"
	"unidir/internal/transport"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

// TestHealthAndReadinessEndpoints stands up a live MinBFT cluster over TCP
// with the same debug-handler wiring runReplica uses and checks /healthz,
// /readyz (backed by Replica.Ready), and /debug/spans against it.
func TestHealthAndReadinessEndpoints(t *testing.T) {
	m, err := types.NewMembership(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	universe, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}

	// Bind every listener on :0 first, then share the final addresses (the
	// tcpnet test idiom; 4 endpoints: 3 replicas + 1 client).
	cfg := make(tcpnet.Config, 4)
	for i := 0; i < 4; i++ {
		cfg[types.ProcessID(i)] = "127.0.0.1:0"
	}
	nets := make([]*tcpnet.Net, 4)
	for i := 0; i < 4; i++ {
		nt, err := tcpnet.New(types.ProcessID(i), cfg)
		if err != nil {
			t.Fatalf("tcpnet.New(%d): %v", i, err)
		}
		cfg[types.ProcessID(i)] = nt.Addr()
		nets[i] = nt
	}

	spans := tracing.NewSpanBuffer(256)
	reps := make([]*minbft.Replica, 3)
	for i := 0; i < 3; i++ {
		opts := []minbft.Option{minbft.WithRequestTimeout(5 * time.Second)}
		if i == 0 {
			opts = append(opts, minbft.WithTracer(tracing.NewTracer("r0", 1, spans)))
		}
		rep, err := minbft.New(m, nets[i], universe.Devices[i], universe.Verifier, kvstore.New(), opts...)
		if err != nil {
			t.Fatalf("minbft.New(%d): %v", i, err)
		}
		reps[i] = rep
		defer rep.Close()
	}

	srv := httptest.NewServer(obs.Handler(obs.NewRegistry(),
		obs.WithSpans(spans), obs.WithReadiness(reps[0].Ready)))
	defer srv.Close()
	status := func(path string) int {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("/healthz"); got != 200 {
		t.Fatalf("/healthz = %d, want 200", got)
	}
	// A freshly started replica is view-active with no state transfer
	// pending: ready.
	if got := status("/readyz"); got != 200 {
		t.Fatalf("/readyz = %d, want 200", got)
	}

	base, err := smr.NewClient(nets[3], m.All(), m.FPlusOne(), 3, 200*time.Millisecond,
		smr.WithRequestEncoder(minbft.EncodeRequestEnvelope))
	if err != nil {
		t.Fatal(err)
	}
	kv := kvstore.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}

	// The cluster still serves and still reports ready after real traffic.
	if got := status("/readyz"); got != 200 {
		t.Fatalf("/readyz after traffic = %d, want 200", got)
	}
	// The closed-loop smr.Client does not propagate trace contexts (only
	// the pipeline samples), so the replica-side buffer stays empty — but
	// the endpoint must serve valid JSON regardless.
	if got := status("/debug/spans"); got != 200 {
		t.Fatalf("/debug/spans = %d, want 200", got)
	}
}

// TestShardConfigLayout pins the shard-major config projection: group g's
// local space is its own n replicas at 0..n-1 plus each client's group-g
// endpoint at n+j.
func TestShardConfigLayout(t *testing.T) {
	addrs := []string{"r0", "r1", "r2", "r3", "r4", "r5", "c0g0", "c0g1", "c1g0", "c1g1"}
	const n, shards = 3, 2
	g0 := shardConfig(addrs, n, shards, 0)
	g1 := shardConfig(addrs, n, shards, 1)
	want0 := tcpnet.Config{0: "r0", 1: "r1", 2: "r2", 3: "c0g0", 4: "c1g0"}
	want1 := tcpnet.Config{0: "r3", 1: "r4", 2: "r5", 3: "c0g1", 4: "c1g1"}
	for id, addr := range want0 {
		if g0[id] != addr {
			t.Errorf("group 0 local %v = %q, want %q", id, g0[id], addr)
		}
	}
	for id, addr := range want1 {
		if g1[id] != addr {
			t.Errorf("group 1 local %v = %q, want %q", id, g1[id], addr)
		}
	}
	if len(g0) != 5 || len(g1) != 5 {
		t.Fatalf("config sizes = %d, %d, want 5", len(g0), len(g1))
	}
}

// TestShardedClusterOverTCP is the sharded end-to-end over real TCP: two
// MinBFT groups (n=3, f=1 each) on their own tcpnet meshes, a sharded
// client routing writes and leased fast-path reads across both.
func TestShardedClusterOverTCP(t *testing.T) {
	const n, f, shards = 3, 1, 2
	m, err := types.NewMembership(n, f)
	if err != nil {
		t.Fatal(err)
	}

	// Per-group shared config maps, the tcpnet test idiom: bind every
	// listener on :0 and publish the final address back into the map the
	// whole group dials through.
	groupCfg := make([]tcpnet.Config, shards)
	repNets := make([][]*tcpnet.Net, shards)
	clientNets := make([]*tcpnet.Net, shards)
	for g := 0; g < shards; g++ {
		groupCfg[g] = make(tcpnet.Config, n+1)
		for i := 0; i <= n; i++ {
			groupCfg[g][types.ProcessID(i)] = "127.0.0.1:0"
		}
		repNets[g] = make([]*tcpnet.Net, n)
		for i := 0; i < n; i++ {
			nt, err := tcpnet.New(types.ProcessID(i), groupCfg[g])
			if err != nil {
				t.Fatalf("group %d replica %d: %v", g, i, err)
			}
			defer nt.Close()
			groupCfg[g][types.ProcessID(i)] = nt.Addr()
			repNets[g][i] = nt
		}
		nt, err := tcpnet.New(types.ProcessID(n), groupCfg[g])
		if err != nil {
			t.Fatalf("group %d client: %v", g, err)
		}
		defer nt.Close()
		groupCfg[g][types.ProcessID(n)] = nt.Addr()
		clientNets[g] = nt
	}

	pipes := make([]*kvstore.PipeClient, shards)
	for g := 0; g < shards; g++ {
		spec := cluster.Spec{
			Protocol: cluster.MinBFT,
			F:        f,
			Scheme:   sig.HMAC,
			Timeout:  5 * time.Second,
			Seed:     int64(7 + g), // distinct trusted universes per group
		}
		nets := repNets[g]
		group, err := cluster.NewGroup(spec, m,
			func(id types.ProcessID) transport.Transport { return nets[id] },
			func() smr.StateMachine { return kvstore.New() }, nil)
		if err != nil {
			t.Fatalf("group %d: %v", g, err)
		}
		defer group.Close()

		enc := spec.Encoders()
		pl, err := smr.NewPipeline(clientNets[g], m.All(), m.FPlusOne(), uint64(n),
			time.Second, 16,
			smr.WithPipelineRequestEncoder(enc.Request),
			smr.WithPipelineReadEncoder(enc.Read),
			smr.WithPipelineReadBatchEncoder(enc.ReadBatch),
			smr.WithReadQuorum(spec.ReadQuorum(m)))
		if err != nil {
			t.Fatalf("group %d pipeline: %v", g, err)
		}
		defer pl.Close()
		pipes[g] = kvstore.NewPipeClient(pl)
	}

	view, err := shard.NewUniformView(1, shards)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := shard.NewClient(shard.NewRouter(view), pipes)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Pick keys so both groups see traffic (sequential key names may all
	// hash into one range), then write and leased-read through the router.
	var keys []string
	perGroup := map[int]int{}
	for i := 0; len(keys) < 24; i++ {
		key := fmt.Sprintf("key-%d", i)
		if g := sc.Group(key); perGroup[g] < 12 {
			perGroup[g]++
			keys = append(keys, key)
		}
		if i > 1<<16 {
			t.Fatalf("could not spread 24 keys over %d groups: %v", shards, perGroup)
		}
	}
	for _, key := range keys {
		if err := sc.Put(ctx, key, []byte("v-"+key)); err != nil {
			t.Fatalf("put %q: %v", key, err)
		}
	}
	for _, key := range keys {
		got, err := sc.RGet(ctx, key) // leased fast path, per group
		if err != nil {
			t.Fatalf("rget %q: %v", key, err)
		}
		if string(got) != "v-"+key {
			t.Fatalf("rget %q = %q", key, got)
		}
	}
}
