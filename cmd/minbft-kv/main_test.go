package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"unidir/internal/kvstore"
	"unidir/internal/minbft"
	"unidir/internal/obs"
	"unidir/internal/obs/tracing"
	"unidir/internal/sig"
	"unidir/internal/smr"
	"unidir/internal/tcpnet"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

// TestHealthAndReadinessEndpoints stands up a live MinBFT cluster over TCP
// with the same debug-handler wiring runReplica uses and checks /healthz,
// /readyz (backed by Replica.Ready), and /debug/spans against it.
func TestHealthAndReadinessEndpoints(t *testing.T) {
	m, err := types.NewMembership(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	universe, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}

	// Bind every listener on :0 first, then share the final addresses (the
	// tcpnet test idiom; 4 endpoints: 3 replicas + 1 client).
	cfg := make(tcpnet.Config, 4)
	for i := 0; i < 4; i++ {
		cfg[types.ProcessID(i)] = "127.0.0.1:0"
	}
	nets := make([]*tcpnet.Net, 4)
	for i := 0; i < 4; i++ {
		nt, err := tcpnet.New(types.ProcessID(i), cfg)
		if err != nil {
			t.Fatalf("tcpnet.New(%d): %v", i, err)
		}
		cfg[types.ProcessID(i)] = nt.Addr()
		nets[i] = nt
	}

	spans := tracing.NewSpanBuffer(256)
	reps := make([]*minbft.Replica, 3)
	for i := 0; i < 3; i++ {
		opts := []minbft.Option{minbft.WithRequestTimeout(5 * time.Second)}
		if i == 0 {
			opts = append(opts, minbft.WithTracer(tracing.NewTracer("r0", 1, spans)))
		}
		rep, err := minbft.New(m, nets[i], universe.Devices[i], universe.Verifier, kvstore.New(), opts...)
		if err != nil {
			t.Fatalf("minbft.New(%d): %v", i, err)
		}
		reps[i] = rep
		defer rep.Close()
	}

	srv := httptest.NewServer(obs.Handler(obs.NewRegistry(),
		obs.WithSpans(spans), obs.WithReadiness(reps[0].Ready)))
	defer srv.Close()
	status := func(path string) int {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("/healthz"); got != 200 {
		t.Fatalf("/healthz = %d, want 200", got)
	}
	// A freshly started replica is view-active with no state transfer
	// pending: ready.
	if got := status("/readyz"); got != 200 {
		t.Fatalf("/readyz = %d, want 200", got)
	}

	base, err := smr.NewClient(nets[3], m.All(), m.FPlusOne(), 3, 200*time.Millisecond,
		smr.WithRequestEncoder(minbft.EncodeRequestEnvelope))
	if err != nil {
		t.Fatal(err)
	}
	kv := kvstore.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}

	// The cluster still serves and still reports ready after real traffic.
	if got := status("/readyz"); got != 200 {
		t.Fatalf("/readyz after traffic = %d, want 200", got)
	}
	// The closed-loop smr.Client does not propagate trace contexts (only
	// the pipeline samples), so the replica-side buffer stays empty — but
	// the endpoint must serve valid JSON regardless.
	if got := status("/debug/spans"); got != 200 {
		t.Fatalf("/debug/spans = %d, want 200", got)
	}
}
