// Command minbft-kv runs a MinBFT-replicated key-value store over real TCP,
// one OS process per role.
//
// Start a 3-replica cluster tolerating 1 Byzantine fault (four terminals):
//
//	minbft-kv -role replica -id 0 -n 3 -f 1 -config 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7010
//	minbft-kv -role replica -id 1 -n 3 -f 1 -config 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7010
//	minbft-kv -role replica -id 2 -n 3 -f 1 -config 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7010
//	minbft-kv -role client  -id 3 -n 3 -f 1 -config 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7010 put greeting hello
//	minbft-kv -role client  -id 3 -n 3 -f 1 -config ...                                                          get greeting
//
// `rget KEY` reads through the leased fast path instead of the ordering
// path: the leader answers locally under a trusted-counter-attested lease,
// falling back to f+1 matching votes when no lease is live (-lease-term,
// UNIDIR_LEASE; see DESIGN.md §8).
//
// The config lists one address per process ID, replicas first (IDs 0..n-1),
// then client endpoints. Kill a backup replica and the cluster keeps
// serving; kill the primary and a view change recovers it.
//
// Crash-restart survival: give each replica its own -data-dir and it
// persists the trusted-counter WAL plus the latest stable checkpoint there.
// A replica killed outright (SIGKILL) and restarted with the same flags
// rehydrates its counter monotonically, announces the restart, and catches
// up via state transfer. -checkpoint sets the interval in executed batches
// (0 uses the UNIDIR_CKPT default of 128; negative disables).
//
// Demo key provisioning: every process derives the same TrInc universe from
// -seed, so trinkets and verifiers agree across OS processes. A production
// deployment would provision real hardware or per-device keys instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"unidir/internal/kvstore"
	"unidir/internal/minbft"
	"unidir/internal/obs"
	"unidir/internal/obs/tracing"
	"unidir/internal/sig"
	"unidir/internal/smr"
	"unidir/internal/tcpnet"
	"unidir/internal/trusted/ctrstore"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

// replicaOpts carries the replica-only tunables from flag parsing to
// runReplica.
type replicaOpts struct {
	timeout       time.Duration
	dataDir       string
	checkpoint    int
	dialTimeout   time.Duration
	writeTimeout  time.Duration
	debugAddr     string
	batchDeadline time.Duration
	admitPending  int
	admitRate     float64
	admitBurst    int
	paceDepth     int
	leaseTerm     time.Duration
}

func main() {
	role := flag.String("role", "", "replica or client")
	id := flag.Int("id", -1, "this process's ID (replicas: 0..n-1; clients: >= n)")
	n := flag.Int("n", 3, "number of replicas")
	f := flag.Int("f", 1, "failure threshold (n must be >= 2f+1)")
	config := flag.String("config", "", "comma-separated host:port per process ID")
	seed := flag.Int64("seed", 42, "deterministic key seed shared by the whole demo cluster")
	timeout := flag.Duration("timeout", time.Second, "view-change request timeout (replicas)")
	dataDir := flag.String("data-dir", "", "replica persistence dir (counter WAL + stable checkpoint); empty = volatile")
	checkpoint := flag.Int("checkpoint", 0, "checkpoint interval in executed batches (0 = UNIDIR_CKPT default, negative disables)")
	dialTimeout := flag.Duration("dial-timeout", 0, "TCP dial timeout per connection attempt (0 = 2s default)")
	writeTimeout := flag.Duration("write-timeout", 0, "TCP write deadline per coalesced batch (0 = 15s default)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/trace, /debug/spans, /healthz, /readyz, and pprof on this host:port (replicas; empty disables)")
	batchDeadline := flag.Duration("batch-deadline", 0, "adaptive batch deadline (0 = UNIDIR_BATCH_DEADLINE default of 100µs, negative disables)")
	admitPending := flag.Int("admit-pending", -1, "shed requests past this pending-queue depth (-1 = UNIDIR_ADMIT_PENDING default of 4096, 0 unbounded)")
	admitRate := flag.Float64("admit-rate", -1, "per-client admission rate in req/s (-1 = UNIDIR_ADMIT_RATE default, 0 unlimited)")
	admitBurst := flag.Int("admit-burst", -1, "per-client admission burst (-1 = UNIDIR_ADMIT_BURST default of rate/10)")
	paceDepth := flag.Int("pace-depth", 0, "pause proposing while a peer's send queue holds this many frames (0 = UNIDIR_PACE_DEPTH default of 4096, negative disables)")
	leaseTerm := flag.Duration("lease-term", 0, "leader lease term for the read fast path (0 = UNIDIR_LEASE default of 250ms, negative disables)")
	flag.Parse()

	ro := replicaOpts{
		timeout:       *timeout,
		dataDir:       *dataDir,
		checkpoint:    *checkpoint,
		dialTimeout:   *dialTimeout,
		writeTimeout:  *writeTimeout,
		debugAddr:     *debugAddr,
		batchDeadline: *batchDeadline,
		admitPending:  *admitPending,
		admitRate:     *admitRate,
		admitBurst:    *admitBurst,
		paceDepth:     *paceDepth,
		leaseTerm:     *leaseTerm,
	}
	if err := run(*role, *id, *n, *f, *config, *seed, ro, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "minbft-kv:", err)
		os.Exit(1)
	}
}

func run(role string, id, n, f int, config string, seed int64, ro replicaOpts, args []string) error {
	addrs := strings.Split(config, ",")
	if config == "" || len(addrs) <= n {
		return fmt.Errorf("-config must list at least n+1 addresses (replicas then clients)")
	}
	cfg := make(tcpnet.Config, len(addrs))
	for i, addr := range addrs {
		cfg[types.ProcessID(i)] = strings.TrimSpace(addr)
	}
	m, err := types.NewMembership(n, f)
	if err != nil {
		return err
	}
	self := types.ProcessID(id)
	if _, ok := cfg[self]; !ok {
		return fmt.Errorf("id %d has no address in -config", id)
	}

	switch role {
	case "replica":
		return runReplica(m, self, cfg, seed, ro)
	case "client":
		return runClient(m, self, cfg, args)
	default:
		return fmt.Errorf("-role must be replica or client")
	}
}

func runReplica(m types.Membership, self types.ProcessID, cfg tcpnet.Config, seed int64, ro replicaOpts) error {
	if !m.Contains(self) {
		return fmt.Errorf("replica id %v out of range [0, %d)", self, m.N)
	}
	universe, err := trinc.NewUniverse(m, sig.HMAC, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	repOpts := []minbft.Option{minbft.WithRequestTimeout(ro.timeout)}
	if ro.checkpoint != 0 {
		repOpts = append(repOpts, minbft.WithCheckpointInterval(ro.checkpoint))
	}
	if ro.batchDeadline != 0 {
		repOpts = append(repOpts, minbft.WithBatchDeadline(ro.batchDeadline))
	}
	if ro.admitPending >= 0 || ro.admitRate >= 0 || ro.admitBurst >= 0 {
		// Flags override the UNIDIR_ADMIT_* environment defaults per field.
		admit := smr.DefaultAdmissionConfig()
		if ro.admitPending >= 0 {
			admit.MaxPending = ro.admitPending
		}
		if ro.admitRate >= 0 {
			admit.Rate = ro.admitRate
		}
		if ro.admitBurst >= 0 {
			admit.Burst = ro.admitBurst
		}
		repOpts = append(repOpts, minbft.WithAdmission(admit))
	}
	if ro.paceDepth != 0 {
		repOpts = append(repOpts, minbft.WithProposalPacing(ro.paceDepth))
	}
	if ro.leaseTerm != 0 {
		repOpts = append(repOpts, minbft.WithLeaseTerm(ro.leaseTerm))
	}
	var reg *obs.Registry
	var spans *tracing.SpanBuffer
	if ro.debugAddr != "" {
		reg = obs.NewRegistry()
		repOpts = append(repOpts, minbft.WithMetrics(reg))
		universe.Verifier.FastPath().AttachMetrics(reg)
		if rate := tracing.DefaultSampleRate(); rate > 0 {
			spans = tracing.NewSpanBuffer(4096)
			repOpts = append(repOpts,
				minbft.WithTracer(tracing.NewTracer(fmt.Sprintf("r%d", self), rate, spans)))
		}
	}
	var counters *ctrstore.Store
	if ro.dataDir != "" {
		// Counter persistence before anything attests: the WAL is what
		// keeps the rehydrated trinket monotone across SIGKILL.
		if err := os.MkdirAll(ro.dataDir, 0o755); err != nil {
			return err
		}
		counters, err = ctrstore.Open(filepath.Join(ro.dataDir, "usig.wal"),
			ctrstore.WithLogger(obs.NewLogger(os.Stderr, slog.LevelInfo, "ctrstore", self)))
		if err != nil {
			return err
		}
		defer counters.Close()
		if err := universe.Devices[self].Persist(counters); err != nil {
			return err
		}
		repOpts = append(repOpts, minbft.WithDataDir(ro.dataDir))
	}
	var netOpts []tcpnet.Option
	if ro.dialTimeout > 0 {
		netOpts = append(netOpts, tcpnet.WithDialTimeout(ro.dialTimeout))
	}
	if ro.writeTimeout > 0 {
		netOpts = append(netOpts, tcpnet.WithWriteTimeout(ro.writeTimeout))
	}
	if reg != nil {
		netOpts = append(netOpts, tcpnet.WithMetrics(reg))
	}
	tr, err := tcpnet.New(self, cfg, netOpts...)
	if err != nil {
		return err
	}
	rep, err := minbft.New(m, tr, universe.Devices[self], universe.Verifier, kvstore.New(), repOpts...)
	if err != nil {
		_ = tr.Close()
		return err
	}
	fmt.Printf("replica %v serving on %s (n=%d, f=%d)\n", self, tr.Addr(), m.N, m.F)
	if reg != nil {
		handler := obs.Handler(reg, obs.WithSpans(spans), obs.WithReadiness(rep.Ready))
		go func() {
			fmt.Printf("debug server on http://%s/metrics\n", ro.debugAddr)
			if err := http.ListenAndServe(ro.debugAddr, handler); err != nil {
				fmt.Fprintln(os.Stderr, "minbft-kv: debug server:", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	return rep.Close()
}

func runClient(m types.Membership, self types.ProcessID, cfg tcpnet.Config, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: ... put KEY VALUE | get KEY | rget KEY | del KEY")
	}
	tr, err := tcpnet.New(self, cfg)
	if err != nil {
		return err
	}
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if args[0] == "rget" {
		// Read fast path: answered by one leased reply from the leader, or by
		// f+1 matching fallback votes when no lease is live (smr/read.go).
		// Built instead of the ordering-path client: one receiver per
		// transport endpoint.
		pl, err := smr.NewPipeline(tr, m.All(), m.FPlusOne(), uint64(self),
			200*time.Millisecond, 1,
			smr.WithPipelineRequestEncoder(minbft.EncodeRequestEnvelope),
			smr.WithPipelineReadEncoder(minbft.EncodeReadRequestEnvelope),
			smr.WithPipelineReadBatchEncoder(minbft.EncodeReadBatchEnvelope),
			smr.WithReadQuorum(m.FPlusOne()))
		if err != nil {
			return err
		}
		defer pl.Close()
		v, err := kvstore.NewPipeClient(pl).GetFast(ctx, args[1])
		if err != nil {
			return err
		}
		fmt.Println(string(v))
		return nil
	}

	base, err := smr.NewClient(tr, m.All(), m.FPlusOne(), uint64(self), 200*time.Millisecond,
		smr.WithRequestEncoder(minbft.EncodeRequestEnvelope))
	if err != nil {
		return err
	}
	kv := kvstore.NewClient(base)

	switch args[0] {
	case "put":
		if len(args) != 3 {
			return fmt.Errorf("usage: put KEY VALUE")
		}
		if err := kv.Put(ctx, args[1], []byte(args[2])); err != nil {
			return err
		}
		fmt.Println("OK")
	case "get":
		v, err := kv.Get(ctx, args[1])
		if err != nil {
			return err
		}
		fmt.Println(string(v))
	case "del":
		if err := kv.Del(ctx, args[1]); err != nil {
			return err
		}
		fmt.Println("OK")
	default:
		return fmt.Errorf("unknown op %q", args[0])
	}
	return nil
}
