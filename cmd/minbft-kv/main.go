// Command minbft-kv runs a MinBFT-replicated key-value store over real TCP,
// one OS process per role.
//
// Start a 3-replica cluster tolerating 1 Byzantine fault (four terminals):
//
//	minbft-kv -role replica -id 0 -n 3 -f 1 -config 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7010
//	minbft-kv -role replica -id 1 -n 3 -f 1 -config 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7010
//	minbft-kv -role replica -id 2 -n 3 -f 1 -config 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7010
//	minbft-kv -role client  -id 3 -n 3 -f 1 -config 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7010 put greeting hello
//	minbft-kv -role client  -id 3 -n 3 -f 1 -config ...                                                          get greeting
//
// `rget KEY` reads through the leased fast path instead of the ordering
// path: the leader answers locally under a trusted-counter-attested lease,
// falling back to f+1 matching votes when no lease is live (-lease-term,
// UNIDIR_LEASE; see DESIGN.md §8).
//
// The config lists one address per process ID, replicas first (IDs 0..n-1),
// then client endpoints. Kill a backup replica and the cluster keeps
// serving; kill the primary and a view change recovers it.
//
// Sharding: -shards s runs s independent consensus groups and routes every
// key to the group owning it (internal/shard; UNIDIR_SHARDS sets the
// default). The config becomes shard-major: s*n replica addresses (group
// 0's replicas, then group 1's, ...), then s addresses per client — one
// endpoint per group, since a client process reaches whichever group its
// key routes to. Replica IDs are global: replica id serves group id/n as
// local replica id%n. Client IDs start at s*n. With -shards 1 (the
// default) this collapses to the layout above.
//
// Crash-restart survival: give each replica its own -data-dir and it
// persists the trusted-counter WAL plus the latest stable checkpoint there.
// A replica killed outright (SIGKILL) and restarted with the same flags
// rehydrates its counter monotonically, announces the restart, and catches
// up via state transfer. -checkpoint sets the interval in executed batches
// (0 uses the UNIDIR_CKPT default of 128; negative disables).
//
// Demo key provisioning: every process derives the same TrInc universe from
// -seed, so trinkets and verifiers agree across OS processes. A production
// deployment would provision real hardware or per-device keys instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"unidir/internal/cluster"
	"unidir/internal/kvstore"
	"unidir/internal/obs"
	"unidir/internal/obs/tracing"
	"unidir/internal/shard"
	"unidir/internal/sig"
	"unidir/internal/smr"
	"unidir/internal/tcpnet"
	"unidir/internal/types"
)

// replicaOpts carries the replica-only tunables from flag parsing to
// runReplica.
type replicaOpts struct {
	timeout       time.Duration
	dataDir       string
	checkpoint    int
	dialTimeout   time.Duration
	writeTimeout  time.Duration
	debugAddr     string
	batchDeadline time.Duration
	admitPending  int
	admitRate     float64
	admitBurst    int
	paceDepth     int
	leaseTerm     time.Duration
}

func main() {
	role := flag.String("role", "", "replica or client")
	id := flag.Int("id", -1, "this process's ID (replicas: 0..n-1; clients: >= n)")
	n := flag.Int("n", 3, "number of replicas")
	f := flag.Int("f", 1, "failure threshold (n must be >= 2f+1)")
	config := flag.String("config", "", "comma-separated host:port per process ID (shard-major with -shards > 1)")
	shards := flag.Int("shards", shard.DefaultShards(), "independent consensus groups; keys route by hash (UNIDIR_SHARDS sets the default)")
	seed := flag.Int64("seed", 42, "deterministic key seed shared by the whole demo cluster")
	timeout := flag.Duration("timeout", time.Second, "view-change request timeout (replicas)")
	dataDir := flag.String("data-dir", "", "replica persistence dir (counter WAL + stable checkpoint); empty = volatile")
	checkpoint := flag.Int("checkpoint", 0, "checkpoint interval in executed batches (0 = UNIDIR_CKPT default, negative disables)")
	dialTimeout := flag.Duration("dial-timeout", 0, "TCP dial timeout per connection attempt (0 = 2s default)")
	writeTimeout := flag.Duration("write-timeout", 0, "TCP write deadline per coalesced batch (0 = 15s default)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/trace, /debug/spans, /debug/status, /healthz, /readyz, and pprof on this host:port (replicas; empty disables)")
	batchDeadline := flag.Duration("batch-deadline", 0, "adaptive batch deadline (0 = UNIDIR_BATCH_DEADLINE default of 100µs, negative disables)")
	admitPending := flag.Int("admit-pending", -1, "shed requests past this pending-queue depth (-1 = UNIDIR_ADMIT_PENDING default of 4096, 0 unbounded)")
	admitRate := flag.Float64("admit-rate", -1, "per-client admission rate in req/s (-1 = UNIDIR_ADMIT_RATE default, 0 unlimited)")
	admitBurst := flag.Int("admit-burst", -1, "per-client admission burst (-1 = UNIDIR_ADMIT_BURST default of rate/10)")
	paceDepth := flag.Int("pace-depth", 0, "pause proposing while a peer's send queue holds this many frames (0 = UNIDIR_PACE_DEPTH default of 4096, negative disables)")
	leaseTerm := flag.Duration("lease-term", 0, "leader lease term for the read fast path (0 = UNIDIR_LEASE default of 250ms, negative disables)")
	flag.Parse()

	ro := replicaOpts{
		timeout:       *timeout,
		dataDir:       *dataDir,
		checkpoint:    *checkpoint,
		dialTimeout:   *dialTimeout,
		writeTimeout:  *writeTimeout,
		debugAddr:     *debugAddr,
		batchDeadline: *batchDeadline,
		admitPending:  *admitPending,
		admitRate:     *admitRate,
		admitBurst:    *admitBurst,
		paceDepth:     *paceDepth,
		leaseTerm:     *leaseTerm,
	}
	if err := run(*role, *id, *n, *f, *shards, *config, *seed, ro, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "minbft-kv:", err)
		os.Exit(1)
	}
}

func run(role string, id, n, f, shards int, config string, seed int64, ro replicaOpts, args []string) error {
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	addrs := strings.Split(config, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	// Shard-major layout: shards*n replica addresses, then shards per
	// client. With shards=1 this is the classic replicas-then-clients list.
	if config == "" || len(addrs)%shards != 0 || len(addrs)/shards <= n {
		return fmt.Errorf("-config must list shards*n replica addresses then shards per client (got %d addresses for n=%d shards=%d)",
			len(addrs), n, shards)
	}
	m, err := types.NewMembership(n, f)
	if err != nil {
		return err
	}

	switch role {
	case "replica":
		if id < 0 || id >= shards*n {
			return fmt.Errorf("replica id %d out of range [0, %d)", id, shards*n)
		}
		g, local := id/n, types.ProcessID(id%n)
		// Each group derives its own trusted-hardware universe: same seed
		// convention, offset by group, so all processes of a group agree
		// and distinct groups hold distinct keys.
		return runReplica(m, local, g, shardConfig(addrs, n, shards, g), seed+int64(g), ro)
	case "client":
		if id < shards*n {
			return fmt.Errorf("client id %d must be >= shards*n (%d)", id, shards*n)
		}
		return runClient(m, n, shards, id-shards*n, addrs, args)
	default:
		return fmt.Errorf("-role must be replica or client")
	}
}

// shardConfig projects the shard-major global address list onto group g's
// local process space: local IDs 0..n-1 are the group's replicas, local n+j
// is client j's group-g endpoint.
func shardConfig(addrs []string, n, shards, g int) tcpnet.Config {
	clients := len(addrs)/shards - n
	cfg := make(tcpnet.Config, n+clients)
	for i := 0; i < n; i++ {
		cfg[types.ProcessID(i)] = addrs[g*n+i]
	}
	for j := 0; j < clients; j++ {
		cfg[types.ProcessID(n+j)] = addrs[shards*n+j*shards+g]
	}
	return cfg
}

// replicaSpec translates the replica flags into the group-agnostic
// cluster.Spec shared with the in-process harness.
func replicaSpec(m types.Membership, seed int64, ro replicaOpts) cluster.Spec {
	spec := cluster.Spec{
		Protocol:      cluster.MinBFT,
		F:             m.F,
		Scheme:        sig.HMAC,
		Timeout:       ro.timeout,
		Ckpt:          ro.checkpoint,
		BatchDeadline: ro.batchDeadline,
		PaceDepth:     ro.paceDepth,
		LeaseTerm:     ro.leaseTerm,
		DataDir:       ro.dataDir,
		Seed:          seed,
	}
	if ro.admitPending >= 0 || ro.admitRate >= 0 || ro.admitBurst >= 0 {
		// Flags override the UNIDIR_ADMIT_* environment defaults per field.
		admit := smr.DefaultAdmissionConfig()
		if ro.admitPending >= 0 {
			admit.MaxPending = ro.admitPending
		}
		if ro.admitRate >= 0 {
			admit.Rate = ro.admitRate
		}
		if ro.admitBurst >= 0 {
			admit.Burst = ro.admitBurst
		}
		spec.Admission = &admit
	}
	return spec
}

func runReplica(m types.Membership, self types.ProcessID, g int, cfg tcpnet.Config, seed int64, ro replicaOpts) error {
	if !m.Contains(self) {
		return fmt.Errorf("replica id %v out of range [0, %d)", self, m.N)
	}
	spec := replicaSpec(m, seed, ro)
	var reg *obs.Registry
	var spans *tracing.SpanBuffer
	var tracer *tracing.Tracer
	if ro.debugAddr != "" {
		reg = obs.NewRegistry()
		obs.SetBuildInfo(reg, "protocol", spec.Protocol.String(), "binary", "minbft-kv")
		spec.Metrics = reg
		if rate := tracing.DefaultSampleRate(); rate > 0 {
			spans = tracing.NewSpanBuffer(4096)
			tracer = tracing.NewTracer(fmt.Sprintf("r%d", self), rate, spans)
		}
	}
	keys, err := cluster.ProvisionKeys(spec, m)
	if err != nil {
		return err
	}
	keys.AttachMetrics(reg)
	if ro.dataDir != "" {
		// Counter persistence before anything attests: the WAL is what
		// keeps the rehydrated trinket monotone across SIGKILL.
		counters, err := keys.Persist(self, ro.dataDir,
			obs.NewLogger(os.Stderr, slog.LevelInfo, "ctrstore", self))
		if err != nil {
			return err
		}
		defer counters.Close()
	}
	var netOpts []tcpnet.Option
	if ro.dialTimeout > 0 {
		netOpts = append(netOpts, tcpnet.WithDialTimeout(ro.dialTimeout))
	}
	if ro.writeTimeout > 0 {
		netOpts = append(netOpts, tcpnet.WithWriteTimeout(ro.writeTimeout))
	}
	if reg != nil {
		netOpts = append(netOpts, tcpnet.WithMetrics(reg))
	}
	tr, err := tcpnet.New(self, cfg, netOpts...)
	if err != nil {
		return err
	}
	rep, err := cluster.NewReplica(spec, m, self, tr, keys, kvstore.New(), tracer)
	if err != nil {
		_ = tr.Close()
		return err
	}
	fmt.Printf("replica %v serving on %s (n=%d, f=%d)\n", self, tr.Addr(), m.N, m.F)
	if reg != nil {
		opts := []obs.HandlerOption{
			obs.WithSpans(spans),
			obs.WithReadinessDetail(cluster.ReadinessDetail(rep)),
		}
		if sp := cluster.StatusProvider(rep); sp != nil {
			opts = append(opts, obs.WithStatus(strconv.Itoa(g), sp))
		}
		handler := obs.Handler(reg, opts...)
		go func() {
			fmt.Printf("debug server on http://%s/metrics\n", ro.debugAddr)
			if err := http.ListenAndServe(ro.debugAddr, handler); err != nil {
				fmt.Fprintln(os.Stderr, "minbft-kv: debug server:", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	return rep.Close()
}

func runClient(m types.Membership, n, shards, clientIdx int, addrs []string, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: ... put KEY VALUE | get KEY | rget KEY | del KEY")
	}
	// Route the key, then talk to its group exactly like an unsharded
	// client: every CLI invocation is a single-key operation, so routing is
	// just picking which group's endpoints to dial. All clients share the
	// deterministic uniform view, so they agree on placement with no
	// coordination (shard.View).
	view, err := shard.NewUniformView(1, shards)
	if err != nil {
		return err
	}
	cfg := shardConfig(addrs, n, shards, view.Group(args[1]))
	self := types.ProcessID(n + clientIdx)
	tr, err := tcpnet.New(self, cfg)
	if err != nil {
		return err
	}
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	spec := cluster.Spec{Protocol: cluster.MinBFT, F: m.F}
	enc := spec.Encoders()
	if args[0] == "rget" {
		// Read fast path: answered by one leased reply from the leader, or by
		// f+1 matching fallback votes when no lease is live (smr/read.go).
		// Built instead of the ordering-path client: one receiver per
		// transport endpoint.
		pl, err := smr.NewPipeline(tr, m.All(), m.FPlusOne(), uint64(self),
			200*time.Millisecond, 1,
			smr.WithPipelineRequestEncoder(enc.Request),
			smr.WithPipelineReadEncoder(enc.Read),
			smr.WithPipelineReadBatchEncoder(enc.ReadBatch),
			smr.WithReadQuorum(spec.ReadQuorum(m)))
		if err != nil {
			return err
		}
		defer pl.Close()
		v, err := kvstore.NewPipeClient(pl).GetFast(ctx, args[1])
		if err != nil {
			return err
		}
		fmt.Println(string(v))
		return nil
	}

	base, err := smr.NewClient(tr, m.All(), m.FPlusOne(), uint64(self), 200*time.Millisecond,
		smr.WithRequestEncoder(enc.Request))
	if err != nil {
		return err
	}
	kv := kvstore.NewClient(base)

	switch args[0] {
	case "put":
		if len(args) != 3 {
			return fmt.Errorf("usage: put KEY VALUE")
		}
		if err := kv.Put(ctx, args[1], []byte(args[2])); err != nil {
			return err
		}
		fmt.Println("OK")
	case "get":
		v, err := kv.Get(ctx, args[1])
		if err != nil {
			return err
		}
		fmt.Println(string(v))
	case "del":
		if err := kv.Del(ctx, args[1]); err != nil {
			return err
		}
		fmt.Println("OK")
	default:
		return fmt.Errorf("unknown op %q", args[0])
	}
	return nil
}
