// Package unidir is a production-quality Go reproduction of Ben-David &
// Nayak, "Brief Announcement: Classifying Trusted Hardware via
// Unidirectional Communication" (PODC 2021).
//
// The paper classifies the trusted hardware used to raise Byzantine fault
// tolerance past the asynchronous n > 3f bound into two strictly separated
// power classes: trusted logs (A2M, TrInc, SGX-style attestation), which
// are no stronger than sequenced reliable broadcast, and shared memory
// with ACLs (SWMR registers, sticky bits, PEATS), which additionally
// provide unidirectional communication — a partial immunity to network
// partitions that eventual-delivery media cannot offer.
//
// This library makes the whole classification executable:
//
//   - internal/trusted/... — simulated hardware: TrInc, A2M (native and
//     TrInc-backed), SWMR registers, sticky bits, PEATS, and the TrInc-from-
//     SRB construction of Theorem 1;
//   - internal/rounds — round systems for each communication class
//     (SWMR-based unidirectional, reliable-broadcast f=1 corner case,
//     zero-directional async, lock-step bidirectional);
//   - internal/core — the communication classes and the machine-checkable
//     unidirectionality predicate;
//   - internal/srb — sequenced reliable broadcast: property checkers and
//     three implementations (Algorithm 1 over unidirectional rounds, TrInc
//     chains, Bracha baseline);
//   - internal/separation — the paper's §4.1 impossibility as a runnable
//     experiment;
//   - internal/agreement, internal/minbft, internal/pbft, internal/kvstore
//     — the protocol layer the classification pays off in, including a
//     MinBFT-style n=2f+1 replicated state machine on TrInc USIGs;
//   - internal/simnet, internal/tcpnet — adversarial simulated network and
//     a real TCP transport behind one interface.
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for reproduction results. Start
// with:
//
//	go run ./examples/quickstart
//	go run ./examples/separation
//	go run ./examples/minbft-kv
//	go run ./cmd/benchharness -exp all
package unidir
