// The paper's separation (§4.1), live.
//
// Runs the three-scenario indistinguishability argument against the best
// possible "rounds from SRB" protocol and prints the unidirectionality
// violation it is forced into, then the SWMR control arm showing shared
// memory immune to the same adversary.
//
// Run: go run ./examples/separation
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"unidir/internal/separation"
	"unidir/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "separation:", err)
		os.Exit(1)
	}
}

func run() error {
	m, err := types.NewMembership(5, 2)
	if err != nil {
		return err
	}
	fmt.Printf("geometry for n=%d, f=%d:\n", m.N, m.F)
	res, err := separation.Run(m, 10*time.Second, 5)
	if err != nil {
		return err
	}
	fmt.Printf("  Q  = %v   (n-f processes)\n", res.Geometry.Q)
	fmt.Printf("  C1 = %v        (1 process)\n", res.Geometry.C1)
	fmt.Printf("  C2 = %v      (f-1 processes)\n", res.Geometry.C2)

	show := func(name, desc string, out separation.ScenarioOutcome) {
		done := make([]types.ProcessID, 0, len(out.Completed))
		for id, ok := range out.Completed {
			if ok {
				done = append(done, id)
			}
		}
		sort.Slice(done, func(i, j int) bool { return done[i] < done[j] })
		fmt.Printf("%s — %s\n", name, desc)
		fmt.Printf("  completed round 1: %v\n", done)
		if len(out.Violations) == 0 {
			fmt.Println("  unidirectionality violations: none")
		} else {
			for _, v := range out.Violations {
				fmt.Printf("  VIOLATION: %v\n", v)
			}
		}
	}
	show("scenario 1", "C1 crashed, C2->Q delayed; liveness forces Q and C2 onward", res.Scenario1)
	show("scenario 2", "C2 crashed, C1->Q delayed; liveness forces Q and C1 onward", res.Scenario2)
	show("scenario 3", "nobody faulty, all links out of C1 and C2 delayed — indistinguishable from 1 and 2", res.Scenario3)

	fmt.Printf("SWMR control arm: %d randomized adversarial schedules, %d violations\n",
		res.SWMRSchedules, len(res.SWMRViolations))
	fmt.Println("conclusion: SRB (trusted logs) cannot provide unidirectionality; shared memory can.")
	return nil
}
