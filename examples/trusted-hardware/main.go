// Tour of the trusted hardware modules and their equivalences.
//
// Exercises every non-equivocation mechanism the paper classifies — TrInc,
// A2M (native and TrInc-backed), SWMR registers, sticky bits, and PEATS —
// and demonstrates the property each contributes.
//
// Run: go run ./examples/trusted-hardware
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"os"

	"unidir/internal/sig"
	"unidir/internal/trusted/a2m"
	"unidir/internal/trusted/peats"
	"unidir/internal/trusted/sticky"
	"unidir/internal/trusted/swmr"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trusted-hardware:", err)
		os.Exit(1)
	}
}

func run() error {
	m, err := types.NewMembership(4, 1)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(11))

	// --- TrInc: non-equivocation by monotonic counters ---
	fmt.Println("== TrInc (trusted incrementer) ==")
	tu, err := trinc.NewUniverse(m, sig.Ed25519, rng)
	if err != nil {
		return err
	}
	dev := tu.Devices[0]
	att, err := dev.Attest(0, 1, []byte("transfer $100 to alice"))
	if err != nil {
		return err
	}
	fmt.Printf("  p0 attested message at counter value %d (prev %d)\n", att.Seq, att.Prev)
	if _, err := dev.Attest(0, 1, []byte("transfer $100 to bob")); errors.Is(err, trinc.ErrStaleSeq) {
		fmt.Println("  equivocation attempt at the same counter value: rejected by hardware")
	}
	if err := tu.Verifier.CheckMessage(att, []byte("transfer $100 to alice")); err != nil {
		return err
	}
	fmt.Println("  any process can verify the attestation (transferable)")

	// --- A2M: attested append-only logs, native and from TrInc ---
	fmt.Println("== A2M (attested append-only memory) ==")
	au, err := a2m.NewUniverse(m, sig.Ed25519, rng, tu)
	if err != nil {
		return err
	}
	for name, log := range map[string]a2m.Log{
		"native device":  au.Devices[1].NewLog(),
		"built on TrInc": a2m.NewTrIncLog(tu.Devices[1], 1),
	} {
		if _, err := log.Append([]byte("epoch 1: leader=p2")); err != nil {
			return err
		}
		if _, err := log.Append([]byte("epoch 2: leader=p3")); err != nil {
			return err
		}
		proof, err := log.Lookup(1, []byte("challenge-nonce"))
		if err != nil {
			return err
		}
		if err := au.Verifier.Check(proof); err != nil {
			return err
		}
		fmt.Printf("  %s: entry 1 certified as %q — past entries immutable\n", name, proof.Stmt.Value)
	}

	// --- SWMR registers with ACLs ---
	fmt.Println("== SWMR registers (shared memory with ACLs) ==")
	store, err := swmr.NewStore(m)
	if err != nil {
		return err
	}
	if err := store.Write(2, 2, []byte("p2's state")); err != nil {
		return err
	}
	if err := store.Write(3, 2, []byte("intrusion")); errors.Is(err, swmr.ErrACL) {
		fmt.Println("  p3 cannot write p2's register: ACL enforced")
	}
	v, _, err := store.Read(0, 2)
	if err != nil {
		return err
	}
	fmt.Printf("  p0 reads p2's register: %q — single writer, many readers\n", v)

	// --- Sticky bits ---
	fmt.Println("== sticky bits (write-once registers) ==")
	sb, err := sticky.NewStore(m)
	if err != nil {
		return err
	}
	if err := sb.SetOnce(1, 1, 0, []byte("commit")); err != nil {
		return err
	}
	if err := sb.SetOnce(1, 1, 0, []byte("abort")); errors.Is(err, sticky.ErrAlreadySet) {
		fmt.Println("  second write to a sticky slot rejected: first value is final")
	}

	// --- PEATS ---
	fmt.Println("== PEATS (policy-enforced augmented tuple spaces) ==")
	space := peats.NewSpace(peats.RoundPolicy())
	if err := space.Out(2, peats.Tuple{peats.OwnerField(2), []byte("round-1 msg")}); err != nil {
		return err
	}
	if err := space.Out(1, peats.Tuple{peats.OwnerField(2), []byte("forged")}); errors.Is(err, peats.ErrDenied) {
		fmt.Println("  policy denies writing another process's tuples")
	}
	tuples, err := space.Rd(3, peats.Template{peats.OwnerField(2), nil})
	if err != nil {
		return err
	}
	fmt.Printf("  p3 reads p2's tuples: %d found — append-only objects via policy\n", len(tuples))

	fmt.Println("done: all five mechanisms prevent equivocation; the shared-memory")
	fmt.Println("ones additionally provide unidirectionality (see examples/separation).")
	return nil
}
