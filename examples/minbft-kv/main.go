// MinBFT replicated key-value store, in one process.
//
// Spins up an n = 2f+1 MinBFT cluster (TrInc-backed USIGs) over the
// simulated network, runs a client workload, crashes the primary mid-way,
// and shows the view change recovering the service — the trusted-hardware
// BFT deployment the paper's classification motivates, with f fewer
// replicas per fault than PBFT.
//
// Run: go run ./examples/minbft-kv
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"unidir/internal/kvstore"
	"unidir/internal/minbft"
	"unidir/internal/sig"
	"unidir/internal/simnet"
	"unidir/internal/smr"
	"unidir/internal/trusted/trinc"
	"unidir/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "minbft-kv:", err)
		os.Exit(1)
	}
}

func run() error {
	const f = 1
	n := 2*f + 1
	m, err := types.NewMembership(n, f)
	if err != nil {
		return err
	}
	// One extra endpoint for the client.
	netM, err := types.NewMembership(n+1, f)
	if err != nil {
		return err
	}
	net, err := simnet.New(netM)
	if err != nil {
		return err
	}
	defer net.Close()

	// Provision trinkets (the USIGs) and start the replicas.
	universe, err := trinc.NewUniverse(m, sig.Ed25519, rand.New(rand.NewSource(7)))
	if err != nil {
		return err
	}
	replicas := make([]*minbft.Replica, n)
	for i := 0; i < n; i++ {
		replicas[i], err = minbft.New(m, net.Endpoint(types.ProcessID(i)),
			universe.Devices[i], universe.Verifier, kvstore.New(),
			minbft.WithRequestTimeout(200*time.Millisecond))
		if err != nil {
			return err
		}
	}
	defer func() {
		for _, r := range replicas {
			if r != nil {
				_ = r.Close()
			}
		}
	}()
	fmt.Printf("cluster up: n=%d replicas tolerating f=%d Byzantine faults (PBFT would need %d)\n",
		n, f, 3*f+1)

	clientID := types.ProcessID(n)
	base, err := smr.NewClient(net.Endpoint(clientID), m.All(), m.FPlusOne(), uint64(clientID),
		100*time.Millisecond, smr.WithRequestEncoder(minbft.EncodeRequestEnvelope))
	if err != nil {
		return err
	}
	kv := kvstore.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	fmt.Println("writing accounts...")
	for i, who := range []string{"alice", "bob", "carol"} {
		if err := kv.Put(ctx, who, []byte(fmt.Sprintf("balance=%d", (i+1)*100))); err != nil {
			return fmt.Errorf("put %s: %w", who, err)
		}
	}
	v, err := kv.Get(ctx, "bob")
	if err != nil {
		return err
	}
	fmt.Printf("  bob -> %s (view %d)\n", v, replicas[1].View())

	fmt.Println("crashing the primary (replica 0)...")
	_ = replicas[0].Close()
	replicas[0] = nil

	start := time.Now()
	if err := kv.Put(ctx, "dave", []byte("balance=400")); err != nil {
		return fmt.Errorf("put after crash: %w", err)
	}
	fmt.Printf("  service recovered by view change in %v (replicas now in view %d)\n",
		time.Since(start).Round(time.Millisecond), replicas[1].View())

	for _, who := range []string{"alice", "bob", "carol", "dave"} {
		v, err := kv.Get(ctx, who)
		if err != nil {
			return fmt.Errorf("get %s: %w", who, err)
		}
		fmt.Printf("  %s -> %s\n", who, v)
	}
	fmt.Println("done.")
	return nil
}
