// Quickstart: the library in one file.
//
// This example walks the paper's chain bottom-up in a single process:
//
//  1. build SWMR shared memory with ACLs (trusted hardware, shared-memory
//     class) and run unidirectional rounds over it, machine-checking the
//     unidirectionality property;
//  2. build sequenced reliable broadcast from those rounds (Algorithm 1)
//     and broadcast a few messages;
//  3. implement the TrInc trusted-counter interface from that SRB
//     (Theorem 1) and attest a statement.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"unidir/internal/core"
	"unidir/internal/rounds"
	"unidir/internal/sig"
	"unidir/internal/srb"
	"unidir/internal/srb/uniround"
	"unidir/internal/trusted/swmr"
	"unidir/internal/trusted/trincfromsrb"
	"unidir/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A system of n = 5 processes tolerating t = 2 Byzantine failures —
	// n >= 2t+1, enough for the shared-memory constructions, not enough
	// for anything built on plain message passing (which needs 3t+1).
	m, err := types.NewMembership(5, 2)
	if err != nil {
		return err
	}
	rings, err := sig.NewKeyrings(m, sig.Ed25519, rand.New(rand.NewSource(1)))
	if err != nil {
		return err
	}

	// --- 1. Unidirectional rounds from SWMR shared memory ---
	fmt.Println("== unidirectional rounds over SWMR registers ==")
	store, err := swmr.NewStore(m)
	if err != nil {
		return err
	}
	checker := core.NewUniChecker()
	systems := make([]rounds.System, m.N)
	for i := 0; i < m.N; i++ {
		systems[i], err = rounds.NewSWMR(swmr.NewLocal(store, types.ProcessID(i)), m,
			rounds.WithSWMRObserver(checker))
		if err != nil {
			return err
		}
	}
	var wg sync.WaitGroup
	for i, sys := range systems {
		wg.Add(1)
		go func(i int, sys rounds.System) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			for r := types.Round(1); r <= 3; r++ {
				_ = sys.Send(r, []byte(fmt.Sprintf("hello from p%d in round %d", i, r)))
				got, _ := sys.WaitEnd(ctx, r)
				if i == 0 {
					fmt.Printf("  p0 ended round %d having heard %d/%d processes\n", r, len(got), m.N)
				}
			}
		}(i, sys)
	}
	wg.Wait()
	for _, sys := range systems {
		_ = sys.Close()
	}
	fmt.Printf("  unidirectionality violations: %d (shared memory: always 0)\n",
		len(checker.Violations(m.All())))

	// --- 2. SRB from unidirectional rounds (Algorithm 1) ---
	fmt.Println("== sequenced reliable broadcast from unidirectional rounds ==")
	stores := make([]*swmr.Store, m.N) // one memory region per sender instance
	for s := range stores {
		if stores[s], err = swmr.NewStore(m); err != nil {
			return err
		}
	}
	nodes := make([]srb.Node, m.N)
	for i := 0; i < m.N; i++ {
		self := types.ProcessID(i)
		nodes[i], err = uniround.New(m, rings[i], func(sender types.ProcessID) (rounds.System, error) {
			return rounds.NewSWMR(swmr.NewLocal(stores[sender], self), m)
		})
		if err != nil {
			return err
		}
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	for k := 1; k <= 3; k++ {
		if _, err := nodes[0].Broadcast([]byte(fmt.Sprintf("message %d", k))); err != nil {
			return err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for i, n := range nodes {
		for k := 0; k < 3; k++ {
			d, err := n.Deliver(ctx)
			if err != nil {
				return fmt.Errorf("p%d deliver: %w", i, err)
			}
			if i == 1 {
				fmt.Printf("  p1 delivered seq %d from %v: %q\n", d.Seq, d.Sender, d.Data)
			}
		}
	}

	// --- 3. TrInc from SRB (Theorem 1) ---
	fmt.Println("== TrInc trusted counters from SRB ==")
	trinkets := make([]*trincfromsrb.Trinket, m.N)
	for i, n := range nodes {
		trinkets[i] = trincfromsrb.New(n)
		defer trinkets[i].Close()
	}
	att, err := trinkets[2].Attest(1, []byte("p2's first attested statement"))
	if err != nil {
		return err
	}
	if err := trinkets[4].WaitAttestation(ctx, att, 2); err != nil {
		return err
	}
	fmt.Printf("  p4 validated p2's attestation (counter %d, broadcast seq %d)\n", att.C, att.K)
	if _, err := trinkets[2].Attest(1, []byte("equivocation attempt")); err == nil {
		// The Attest itself succeeds (the construction defers enforcement
		// to checkers); the reuse simply never validates anywhere.
		bad, _ := trinkets[2].Attest(1, []byte("equivocation attempt 2"))
		if trinkets[4].CheckAttestation(bad, 2) {
			return fmt.Errorf("equivocation validated — this must never happen")
		}
		fmt.Println("  reused counter value correctly rejected by checkers")
	}
	fmt.Println("done.")
	return nil
}
